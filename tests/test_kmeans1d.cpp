#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cluster/kmeans1d.h"
#include "common/rng.h"

namespace cloudia::cluster {
namespace {

// Brute-force optimal k-means over distinct sorted values: optimal clusters
// of sorted 1-D data are contiguous intervals, so enumerate all cut placements.
double BruteForceCost(std::vector<double> values, int k) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  // NOTE: brute force on *distinct unweighted* values; tests pass distinct
  // inputs when comparing against this.
  int n = static_cast<int>(values.size());
  k = std::min(k, n);
  auto interval_cost = [&](int i, int j) {
    double mean = 0;
    for (int t = i; t <= j; ++t) mean += values[static_cast<size_t>(t)];
    mean /= (j - i + 1);
    double c = 0;
    for (int t = i; t <= j; ++t) {
      double d = values[static_cast<size_t>(t)] - mean;
      c += d * d;
    }
    return c;
  };
  std::vector<std::vector<double>> dp(
      static_cast<size_t>(k),
      std::vector<double>(static_cast<size_t>(n),
                          std::numeric_limits<double>::infinity()));
  for (int j = 0; j < n; ++j) dp[0][static_cast<size_t>(j)] = interval_cost(0, j);
  for (int m = 1; m < k; ++m) {
    for (int j = m; j < n; ++j) {
      for (int i = m; i <= j; ++i) {
        dp[static_cast<size_t>(m)][static_cast<size_t>(j)] =
            std::min(dp[static_cast<size_t>(m)][static_cast<size_t>(j)],
                     dp[static_cast<size_t>(m - 1)][static_cast<size_t>(i - 1)] +
                         interval_cost(i, j));
      }
    }
  }
  return dp[static_cast<size_t>(k - 1)][static_cast<size_t>(n - 1)];
}

TEST(KMeans1DTest, RejectsBadInput) {
  EXPECT_FALSE(KMeans1D({}, 3).ok());
  EXPECT_FALSE(KMeans1D({1.0}, 0).ok());
}

TEST(KMeans1DTest, SingleCluster) {
  auto r = KMeans1D({1, 2, 3, 4}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->centers.size(), 1u);
  EXPECT_DOUBLE_EQ(r->centers[0], 2.5);
  EXPECT_DOUBLE_EQ(r->cost, 5.0);  // (1.5^2 + .5^2)*2
}

TEST(KMeans1DTest, KAtLeastDistinctGivesZeroCost) {
  auto r = KMeans1D({3, 1, 2, 2, 3}, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->centers.size(), 3u);  // distinct values 1,2,3
  EXPECT_DOUBLE_EQ(r->cost, 0.0);
  EXPECT_EQ(r->centers[0], 1.0);
  EXPECT_EQ(r->centers[1], 2.0);
  EXPECT_EQ(r->centers[2], 3.0);
}

TEST(KMeans1DTest, ObviousTwoClusters) {
  auto r = KMeans1D({0.0, 0.1, 0.2, 10.0, 10.1, 10.2}, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->centers.size(), 2u);
  EXPECT_NEAR(r->centers[0], 0.1, 1e-9);
  EXPECT_NEAR(r->centers[1], 10.1, 1e-9);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(r->assignment[static_cast<size_t>(i)], 0);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(r->assignment[static_cast<size_t>(i)], 1);
}

TEST(KMeans1DTest, AssignmentPreservesInputOrder) {
  auto r = KMeans1D({10.0, 0.0, 10.1}, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->assignment[0], 1);
  EXPECT_EQ(r->assignment[1], 0);
  EXPECT_EQ(r->assignment[2], 1);
}

TEST(KMeans1DTest, CentersAreAscending) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.Uniform(0, 5));
  auto r = KMeans1D(v, 7);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->centers.size(); ++i) {
    EXPECT_LT(r->centers[i - 1], r->centers[i]);
  }
}

TEST(KMeans1DTest, MatchesBruteForceOnRandomDistinctInputs) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 3 + static_cast<int>(rng.Below(12));
    std::vector<double> v;
    for (int i = 0; i < n; ++i) {
      v.push_back(std::round(rng.Uniform(0, 100)) +
                  i * 1000.0 * 0);  // may still collide; dedupe below
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    int k = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(v.size())));
    auto r = KMeans1D(v, k);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r->cost, BruteForceCost(v, k), 1e-6)
        << "n=" << v.size() << " k=" << k;
  }
}

TEST(KMeans1DTest, WeightedDuplicatesPullCenters) {
  // 100 copies of 1.0 and a single 2.0 with k=1: center must sit near 1.
  std::vector<double> v(100, 1.0);
  v.push_back(2.0);
  auto r = KMeans1D(v, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->centers[0], (100.0 + 2.0) / 101.0, 1e-12);
}

TEST(ClusterToMeansTest, MapsEveryValueToItsCenter) {
  auto r = ClusterToMeans({0.0, 0.2, 9.8, 10.0}, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)[0], 0.1);
  EXPECT_DOUBLE_EQ((*r)[1], 0.1);
  EXPECT_DOUBLE_EQ((*r)[2], 9.9);
  EXPECT_DOUBLE_EQ((*r)[3], 9.9);
}

TEST(ClusterToMeansTest, ReducesDistinctValues) {
  Rng rng(29);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.Uniform(0.2, 1.4));
  auto r = ClusterToMeans(v, 20);
  ASSERT_TRUE(r.ok());
  std::vector<double> sorted = *r;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_LE(sorted.size(), 20u);
}

TEST(ClusterToMeansTest, ClusteringIsMonotone) {
  // Larger values must never map to smaller cluster means.
  Rng rng(31);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.Uniform(0, 1));
  auto r = ClusterToMeans(v, 8);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = 0; j < v.size(); ++j) {
      if (v[i] < v[j]) {
        EXPECT_LE((*r)[i], (*r)[j]);
      }
    }
  }
}

}  // namespace
}  // namespace cloudia::cluster
