#include <gtest/gtest.h>

#include "deploy/solve.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

class SolveFacadeTest : public ::testing::TestWithParam<Method> {};

TEST_P(SolveFacadeTest, LongestLinkProducesValidDeployment) {
  Rng master(1);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(12, master);
  NdpSolveOptions opts;
  opts.method = GetParam();
  opts.objective = Objective::kLongestLink;
  opts.time_budget_s = 0.3;
  opts.r1_samples = 200;
  opts.threads = 2;
  opts.seed = 11;
  auto r = SolveNodeDeployment(mesh, costs, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(ValidateDeployment(mesh, r->deployment, costs,
                                 Objective::kLongestLink)
                  .ok());
  EXPECT_DOUBLE_EQ(r->cost, LongestLinkCost(mesh, r->deployment, costs));
  EXPECT_FALSE(r->trace.empty());
}

TEST_P(SolveFacadeTest, LongestPathProducesValidDeployment) {
  if (GetParam() == Method::kCp) GTEST_SKIP() << "CP is LLNDP-only";
  Rng master(2);
  graph::CommGraph tree = graph::AggregationTree(2, 3);
  CostMatrix costs = RandomCosts(9, master);
  NdpSolveOptions opts;
  opts.method = GetParam();
  opts.objective = Objective::kLongestPath;
  opts.time_budget_s = 0.3;
  opts.r1_samples = 200;
  opts.threads = 2;
  opts.seed = 13;
  auto r = SolveNodeDeployment(tree, costs, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(ValidateDeployment(tree, r->deployment, costs,
                                 Objective::kLongestPath)
                  .ok());
  auto check = LongestPathCost(tree, r->deployment, costs);
  EXPECT_DOUBLE_EQ(r->cost, *check);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SolveFacadeTest,
                         ::testing::Values(Method::kGreedyG1, Method::kGreedyG2,
                                           Method::kRandomR1, Method::kRandomR2,
                                           Method::kCp, Method::kMip),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           return MethodName(info.param);
                         });

TEST(SolveFacadeTest2, CpRejectsLongestPath) {
  Rng master(3);
  graph::CommGraph tree = graph::AggregationTree(2, 3);
  CostMatrix costs = RandomCosts(9, master);
  NdpSolveOptions opts;
  opts.method = Method::kCp;
  opts.objective = Objective::kLongestPath;
  auto r = SolveNodeDeployment(tree, costs, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolveFacadeTest2, LongestPathRejectsCyclicGraph) {
  Rng master(4);
  graph::CommGraph ring = graph::Ring(5);
  CostMatrix costs = RandomCosts(7, master);
  NdpSolveOptions opts;
  opts.method = Method::kRandomR1;
  opts.objective = Objective::kLongestPath;
  EXPECT_FALSE(SolveNodeDeployment(ring, costs, opts).ok());
}

TEST(SolveFacadeTest2, CpBeatsOrMatchesLightweightOnSmallMesh) {
  // Qualitative Fig. 14 shape at toy scale: CP <= R1, G2 <= G1 on average.
  Rng master(5);
  double cp = 0, r1 = 0, g1 = 0, g2 = 0;
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  for (int trial = 0; trial < 8; ++trial) {
    CostMatrix costs = RandomCosts(11, master);
    NdpSolveOptions opts;
    opts.objective = Objective::kLongestLink;
    opts.seed = master.Next();
    opts.time_budget_s = 1.0;
    opts.method = Method::kCp;
    auto rcp = SolveNodeDeployment(mesh, costs, opts);
    opts.method = Method::kRandomR1;
    opts.r1_samples = 1000;
    auto rr1 = SolveNodeDeployment(mesh, costs, opts);
    opts.method = Method::kGreedyG1;
    auto rg1 = SolveNodeDeployment(mesh, costs, opts);
    opts.method = Method::kGreedyG2;
    auto rg2 = SolveNodeDeployment(mesh, costs, opts);
    ASSERT_TRUE(rcp.ok() && rr1.ok() && rg1.ok() && rg2.ok());
    cp += rcp->cost;
    r1 += rr1->cost;
    g1 += rg1->cost;
    g2 += rg2->cost;
  }
  EXPECT_LE(cp, r1 + 1e-9);
  EXPECT_LE(g2, g1 + 1e-9);
  EXPECT_LE(cp, g2 + 1e-9);
}

TEST(SolveFacadeTest2, MethodNames) {
  EXPECT_STREQ(MethodName(Method::kGreedyG1), "G1");
  EXPECT_STREQ(MethodName(Method::kRandomR2), "R2");
  EXPECT_STREQ(MethodName(Method::kCp), "CP");
  EXPECT_STREQ(MethodName(Method::kMip), "MIP");
}

TEST(SolveFacadeTest2, UnknownMethodErrorListsRegisteredSolvers) {
  Rng master(1);
  graph::CommGraph mesh = graph::Mesh2D(2, 3);
  CostMatrix costs = RandomCosts(8, master);
  NdpSolveOptions opts;
  SolveContext context(Deadline::After(0.1));
  auto r = SolveNodeDeploymentByName(mesh, costs, "flying-solver", opts,
                                     context);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // Not a bare "unknown method": the message names the typo and every
  // registered solver, so a caller can self-correct.
  const std::string& message = r.status().message();
  EXPECT_NE(message.find("flying-solver"), std::string::npos) << message;
  EXPECT_NE(message.find("known:"), std::string::npos) << message;
  for (const char* name :
       {"cp", "mip", "g1", "g2", "r1", "r2", "local", "portfolio"}) {
    EXPECT_NE(message.find(name), std::string::npos)
        << "missing '" << name << "' in: " << message;
  }
}

}  // namespace
}  // namespace cloudia::deploy
