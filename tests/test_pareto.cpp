// SolveParetoFrontier contract tests: every returned point is a valid
// deployment and mutually non-dominated, duplicates collapse, the sweep is
// deterministic at threads = 1, the latency anchor is covered, and invalid
// inputs (bad weights, unknown method) fail with clear errors.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "deploy/pareto.h"
#include "deploy/solver_registry.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

std::vector<double> TieredPrices(int m) {
  // Two price tiers so the cheap half of the pool gives the price axis room.
  std::vector<double> prices(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    prices[static_cast<size_t>(i)] = i < m / 2 ? 0.10 : 0.45;
  }
  return prices;
}

ParetoOptions SmallOptions(int n, int m, double budget_s = 2.0) {
  ParetoOptions options;
  options.solve.objective.primary = Objective::kLongestLink;
  options.solve.objective.instance_prices = TieredPrices(m);
  options.solve.objective.reference.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    options.solve.objective.reference[static_cast<size_t>(i)] = i;
  }
  options.solve.time_budget_s = budget_s;
  options.solve.threads = 1;
  options.solve.seed = 11;
  // Deterministic members only (no wall-clock-sensitive random search).
  options.method = "g2";
  return options;
}

TEST(ParetoDominatesTest, WeakDominanceSemantics) {
  ParetoPoint a, b;
  a.latency_ms = 1.0;
  a.price_per_hour = 2.0;
  a.migrations = 3;
  b = a;
  EXPECT_FALSE(ParetoDominates(a, b));  // equal: no strict axis
  b.price_per_hour = 2.5;
  EXPECT_TRUE(ParetoDominates(a, b));
  EXPECT_FALSE(ParetoDominates(b, a));
  b.latency_ms = 0.5;  // trade-off: neither dominates
  EXPECT_FALSE(ParetoDominates(a, b));
  EXPECT_FALSE(ParetoDominates(b, a));
}

TEST(ParetoTest, FrontierPointsAreValidAndMutuallyNonDominated) {
  Rng rng(5);
  const int n = 9, m = 14;
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(m, rng);
  ParetoOptions options = SmallOptions(n, m);

  auto frontier = SolveParetoFrontier(mesh, costs, options);
  ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
  ASSERT_FALSE(frontier->points.empty());
  EXPECT_EQ(frontier->solves, 10);  // anchor + 5 price + 3 migration + 1 mixed

  auto eval = CostEvaluator::Create(&mesh, &costs, Objective::kLongestLink);
  ASSERT_TRUE(eval.ok());
  for (const ParetoPoint& p : frontier->points) {
    EXPECT_TRUE(ValidateDeployment(mesh, p.deployment, costs,
                                   Objective::kLongestLink)
                    .ok());
    // Reported terms match a from-scratch evaluation of the deployment.
    EXPECT_EQ(p.latency_ms, eval->LatencyCost(p.deployment));
    double price = 0.0;
    int moves = 0;
    for (int v = 0; v < n; ++v) {
      price += options.solve.objective
                   .instance_prices[static_cast<size_t>(p.deployment[v])];
      moves += p.deployment[static_cast<size_t>(v)] !=
               options.solve.objective.reference[static_cast<size_t>(v)];
    }
    EXPECT_NEAR(p.price_per_hour, price, 1e-12);
    EXPECT_EQ(p.migrations, moves);
  }
  for (size_t i = 0; i < frontier->points.size(); ++i) {
    for (size_t j = 0; j < frontier->points.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(ParetoDominates(frontier->points[i], frontier->points[j]))
          << i << " dominates " << j;
    }
  }
  // Sorted ascending by latency.
  for (size_t i = 1; i < frontier->points.size(); ++i) {
    EXPECT_LE(frontier->points[i - 1].latency_ms,
              frontier->points[i].latency_ms);
  }
}

TEST(ParetoTest, FrontierCoversTheLatencyAnchor) {
  Rng rng(21);
  const int n = 9, m = 14;
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(m, rng);
  ParetoOptions options = SmallOptions(n, m);

  auto frontier = SolveParetoFrontier(mesh, costs, options);
  ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();

  // Solve the pure-latency anchor independently with the same member/budget
  // slice; some frontier point must weakly dominate it.
  NdpSolveOptions anchor = options.solve;
  anchor.time_budget_s = options.solve.time_budget_s / frontier->solves;
  SolveContext context(Deadline::After(anchor.time_budget_s));
  auto result =
      SolveNodeDeploymentByName(mesh, costs, options.method, anchor, context);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto eval = CostEvaluator::Create(&mesh, &costs, Objective::kLongestLink);
  ASSERT_TRUE(eval.ok());
  const double anchor_latency = eval->LatencyCost(result->deployment);

  bool covered = false;
  for (const ParetoPoint& p : frontier->points) {
    if (p.latency_ms <= anchor_latency) covered = true;
  }
  EXPECT_TRUE(covered) << "anchor latency " << anchor_latency;
}

TEST(ParetoTest, DeterministicAtOneThread) {
  Rng rng(33);
  const int n = 9, m = 14;
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(m, rng);
  ParetoOptions options = SmallOptions(n, m);

  auto a = SolveParetoFrontier(mesh, costs, options);
  auto b = SolveParetoFrontier(mesh, costs, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->points.size(), b->points.size());
  for (size_t i = 0; i < a->points.size(); ++i) {
    EXPECT_EQ(a->points[i].deployment, b->points[i].deployment);
    EXPECT_EQ(a->points[i].latency_ms, b->points[i].latency_ms);
    EXPECT_EQ(a->points[i].price_per_hour, b->points[i].price_per_hour);
    EXPECT_EQ(a->points[i].migrations, b->points[i].migrations);
  }
  EXPECT_EQ(a->duplicates_dropped, b->duplicates_dropped);
  EXPECT_EQ(a->dominated_dropped, b->dominated_dropped);
}

TEST(ParetoTest, ExplicitWeightsRunOnePointEach) {
  Rng rng(8);
  const int n = 9, m = 14;
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(m, rng);
  ParetoOptions options = SmallOptions(n, m);
  options.weights = {{0.0, 0.0}, {5.0, 0.0}};

  auto frontier = SolveParetoFrontier(mesh, costs, options);
  ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
  EXPECT_EQ(frontier->solves, 2);
  EXPECT_GE(frontier->points.size(), 1u);
}

TEST(ParetoTest, RejectsInvalidWeightsAndUnknownMethod) {
  Rng rng(2);
  const int n = 9, m = 14;
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(m, rng);

  ParetoOptions options = SmallOptions(n, m);
  options.weights = {{-1.0, 0.0}};
  auto bad_weight = SolveParetoFrontier(mesh, costs, options);
  ASSERT_FALSE(bad_weight.ok());
  EXPECT_NE(bad_weight.status().ToString().find("valid range: [0, inf)"),
            std::string::npos)
      << bad_weight.status().ToString();

  options = SmallOptions(n, m);
  options.weights = {{std::numeric_limits<double>::quiet_NaN(), 0.0}};
  EXPECT_FALSE(SolveParetoFrontier(mesh, costs, options).ok());

  options = SmallOptions(n, m);
  options.method = "no-such-solver";
  EXPECT_FALSE(SolveParetoFrontier(mesh, costs, options).ok());
}

TEST(ParetoTest, NoSecondaryAxesCollapsesToSingleAnchor) {
  Rng rng(13);
  const int m = 12;
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(m, rng);
  ParetoOptions options;
  options.solve.time_budget_s = 1.0;
  options.solve.threads = 1;
  options.solve.seed = 11;
  options.method = "g2";

  auto frontier = SolveParetoFrontier(mesh, costs, options);
  ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
  EXPECT_EQ(frontier->solves, 1);  // no price axis, no migration axis
  ASSERT_EQ(frontier->points.size(), 1u);
  EXPECT_EQ(frontier->points[0].price_per_hour, 0.0);
}

}  // namespace
}  // namespace cloudia::deploy
