#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cloudia/advisor.h"
#include "cloudia/session.h"
#include "graph/templates.h"

namespace cloudia {
namespace {

SessionOptions FastOptions(uint64_t seed = 7) {
  SessionOptions options;
  options.measure_duration_s = 20.0;  // virtual seconds; keeps tests quick
  options.seed = seed;
  return options;
}

TEST(DeploymentSessionTest, MeasureOnceSolveManyReusesTheCostMatrix) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 11);
  graph::CommGraph app = graph::Mesh2D(5, 6);  // 30 nodes
  DeploymentSession session(&cloud, &app, FastOptions());

  ASSERT_TRUE(session.Measure().ok());
  deploy::CostMatrix snapshot = session.costs();
  ASSERT_EQ(snapshot.size(), 33);  // 30 * 1.1

  // Acceptance shape: one Measure(), three registered methods, zero
  // re-measurement, per-solver results.
  for (const char* method : {"g2", "cp", "local"}) {
    SolveSpec spec;
    spec.method = method;
    spec.time_budget_s = 1.0;
    spec.seed = 5;
    auto solve = session.Solve(spec);
    ASSERT_TRUE(solve.ok()) << method << ": " << solve.status().ToString();
    EXPECT_EQ(solve->method, method);
    EXPECT_TRUE(deploy::ValidateDeployment(app, solve->result.deployment,
                                           session.costs(), spec.objective)
                    .ok())
        << method;
    EXPECT_EQ(solve->placement.size(), 30u);
    EXPECT_LE(solve->cost_ms, solve->default_cost_ms + 1e-9) << method;
  }
  EXPECT_EQ(session.solves().size(), 3u);
  // The matrix is measured once and never mutated by solving.
  EXPECT_EQ(session.costs(), snapshot);

  // Identical (method, seed) solves on the cached matrix are reproducible,
  // and each solve's result is independent of the solves before it.
  SolveSpec g2;
  g2.method = "g2";
  g2.seed = 5;
  auto again = session.Solve(g2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->result.deployment, session.solves()[0].result.deployment);
}

TEST(DeploymentSessionTest, SolveRunsMissingStagesImplicitly) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 13);
  graph::CommGraph app = graph::Mesh2D(3, 4);
  DeploymentSession session(&cloud, &app, FastOptions());
  SolveSpec spec;
  spec.method = "g1";
  auto solve = session.Solve(spec);
  ASSERT_TRUE(solve.ok()) << solve.status().ToString();
  EXPECT_TRUE(session.allocated_stage_done());
  EXPECT_TRUE(session.measured_stage_done());
  EXPECT_EQ(solve->placement.size(), 12u);
}

TEST(DeploymentSessionTest, StageMisuseIsACleanError) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 17);
  graph::CommGraph app = graph::Mesh2D(3, 3);
  DeploymentSession session(&cloud, &app, FastOptions());

  EXPECT_FALSE(session.Terminate().ok());  // nothing solved yet
  ASSERT_TRUE(session.Allocate().ok());
  EXPECT_FALSE(session.Allocate().ok());  // allocate twice
  ASSERT_TRUE(session.Measure().ok());
  EXPECT_FALSE(session.Measure().ok());  // measure twice

  SolveSpec spec;
  spec.method = "g2";
  ASSERT_TRUE(session.Solve(spec).ok());
  ASSERT_TRUE(session.Terminate().ok());
  EXPECT_FALSE(session.Terminate().ok());   // terminate twice
  EXPECT_FALSE(session.Solve(spec).ok());   // solve after terminate

  // Unknown solver names fail cleanly.
  DeploymentSession session2(&cloud, &app, FastOptions());
  SolveSpec unknown;
  unknown.method = "simulated-annealing";
  auto r = session2.Solve(unknown);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // A session whose solves all failed can still release its pool: Terminate
  // with no successful solve abandons everything instead of leaking it.
  auto abandoned = session2.Terminate();
  ASSERT_TRUE(abandoned.ok());
  EXPECT_EQ(abandoned->size(), session2.allocated().size());
}

TEST(DeploymentSessionTest, OneMeasurementServesMultipleAppGraphs) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 19);
  graph::CommGraph app = graph::Mesh2D(5, 6);
  DeploymentSession session(&cloud, &app, FastOptions());
  ASSERT_TRUE(session.Measure().ok());

  graph::CommGraph smaller = graph::AggregationTree(3, 3);  // 13 nodes
  SolveSpec spec;
  spec.method = "mip";
  spec.objective = deploy::Objective::kLongestPath;
  spec.cost_clusters = 0;
  spec.time_budget_s = 1.0;
  spec.app = &smaller;
  auto solve = session.Solve(spec);
  ASSERT_TRUE(solve.ok()) << solve.status().ToString();
  EXPECT_EQ(solve->placement.size(), 13u);
  EXPECT_TRUE(deploy::ValidateDeployment(smaller, solve->result.deployment,
                                         session.costs(), spec.objective)
                  .ok());

  graph::CommGraph too_big = graph::Mesh2D(10, 10);
  SolveSpec oversized;
  oversized.app = &too_big;
  EXPECT_FALSE(session.Solve(oversized).ok());
}

TEST(DeploymentSessionTest, TerminateKeepsTheBestSolvesInstances) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 23);
  graph::CommGraph app = graph::Mesh2D(4, 5);
  DeploymentSession session(&cloud, &app, FastOptions());

  SolveSpec r1;
  r1.method = "r1";
  r1.r1_samples = 50;
  ASSERT_TRUE(session.Solve(r1).ok());
  SolveSpec cp;
  cp.method = "cp";
  cp.time_budget_s = 1.0;
  ASSERT_TRUE(session.Solve(cp).ok());

  const SessionSolve* best = session.best_solve();
  ASSERT_NE(best, nullptr);
  auto terminated = session.Terminate();
  ASSERT_TRUE(terminated.ok());
  EXPECT_EQ(terminated->size(),
            session.allocated().size() - best->placement.size());
  for (const net::Instance& gone : *terminated) {
    for (const net::Instance& kept : best->placement) {
      EXPECT_NE(gone.id, kept.id);
    }
  }
}

TEST(DeploymentSessionTest, ProgressCallbackSeesMonotoneIncumbents) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 29);
  graph::CommGraph app = graph::Mesh2D(4, 5);
  DeploymentSession session(&cloud, &app, FastOptions());

  std::vector<double> costs_seen;
  SolveSpec spec;
  spec.method = "local";
  spec.time_budget_s = 2.0;
  spec.on_progress = [&costs_seen](const deploy::TracePoint& point,
                                   const deploy::Deployment& d) {
    EXPECT_FALSE(d.empty());
    costs_seen.push_back(point.cost);
  };
  auto solve = session.Solve(spec);
  ASSERT_TRUE(solve.ok());
  ASSERT_FALSE(costs_seen.empty());
  for (size_t i = 1; i < costs_seen.size(); ++i) {
    EXPECT_LE(costs_seen[i], costs_seen[i - 1] + 1e-9);
  }
  EXPECT_DOUBLE_EQ(costs_seen.back(), solve->cost_ms);
}

TEST(DeploymentSessionTest, CancellationStopsR2MidBudget) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 31);
  graph::CommGraph app = graph::Mesh2D(4, 5);
  DeploymentSession session(&cloud, &app, FastOptions());
  ASSERT_TRUE(session.Measure().ok());

  SolveSpec spec;
  spec.method = "r2";
  spec.threads = 2;
  spec.time_budget_s = 30.0;  // far longer than the test may take

  Result<SessionSolve> solve = Status::Internal("not run");
  std::thread worker([&session, &spec, &solve] { solve = session.Solve(spec); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  spec.cancel.Cancel();
  worker.join();

  ASSERT_TRUE(solve.ok()) << solve.status().ToString();
  EXPECT_LT(solve->wall_s, 10.0) << "cancel must cut the 30 s budget short";
  EXPECT_TRUE(deploy::ValidateDeployment(app, solve->result.deployment,
                                         session.costs(), spec.objective)
                  .ok());
}

TEST(DeploymentSessionTest, CancellationStopsCpMidBudget) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 37);
  graph::CommGraph app = graph::Mesh2D(5, 6);
  DeploymentSession session(&cloud, &app, FastOptions());
  ASSERT_TRUE(session.Measure().ok());

  SolveSpec spec;
  spec.method = "cp";
  spec.cost_clusters = 0;  // many thresholds: keeps the descent busy
  spec.time_budget_s = 30.0;

  Result<SessionSolve> solve = Status::Internal("not run");
  std::thread worker([&session, &spec, &solve] { solve = session.Solve(spec); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  spec.cancel.Cancel();
  worker.join();

  ASSERT_TRUE(solve.ok()) << solve.status().ToString();
  EXPECT_LT(solve->wall_s, 10.0) << "cancel must cut the 30 s budget short";
  EXPECT_TRUE(deploy::ValidateDeployment(app, solve->result.deployment,
                                         session.costs(), spec.objective)
                  .ok());
}

TEST(DeploymentSessionTest, MeasureAbortsOnPreCancelledToken) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 43);
  graph::CommGraph app = graph::Mesh2D(3, 4);
  SessionOptions options = FastOptions();
  options.cancel.Cancel();
  DeploymentSession session(&cloud, &app, options);
  Status measured = session.Measure();
  ASSERT_FALSE(measured.ok());
  EXPECT_EQ(measured.code(), StatusCode::kCancelled);
  EXPECT_FALSE(session.measured_stage_done());
}

TEST(DeploymentSessionTest, CancellationAbortsMeasureMidFlight) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 47);
  graph::CommGraph app = graph::Mesh2D(4, 5);
  SessionOptions options = FastOptions();
  // A day of virtual measurement: hours of wall time if cancellation failed
  // to cut it short (the assertion below would then fail loudly).
  options.measure_duration_s = 24.0 * 3600.0;
  DeploymentSession session(&cloud, &app, options);

  Stopwatch wall;
  Status measured = Status::OK();
  std::thread worker([&session, &measured] { measured = session.Measure(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  options.cancel.Cancel();
  worker.join();

  ASSERT_FALSE(measured.ok());
  EXPECT_EQ(measured.code(), StatusCode::kCancelled);
  EXPECT_LT(wall.ElapsedSeconds(), 30.0)
      << "cancel must abort the in-flight measurement promptly";
  EXPECT_FALSE(session.measured_stage_done());
}

TEST(DeploymentSessionTest, AdoptMeasurementReusesAnotherSessionsMatrix) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 53);
  graph::CommGraph app = graph::Mesh2D(4, 5);
  DeploymentSession measured(&cloud, &app, FastOptions());
  ASSERT_TRUE(measured.Measure().ok());

  // A cloud-less session adopts the measurement and solves identically.
  DeploymentSession adopted(/*cloud=*/nullptr, &app, FastOptions());
  ASSERT_TRUE(adopted
                  .AdoptMeasurement(measured.allocated(), measured.costs(),
                                    measured.measure_virtual_s())
                  .ok());
  EXPECT_TRUE(adopted.allocated_stage_done());
  EXPECT_TRUE(adopted.measured_stage_done());
  EXPECT_EQ(adopted.costs(), measured.costs());

  SolveSpec spec;
  spec.method = "g2";
  spec.seed = 3;
  auto a = measured.Solve(spec);
  auto b = adopted.Solve(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->result.deployment, b->result.deployment);
  EXPECT_DOUBLE_EQ(a->cost_ms, b->cost_ms);

  // The adopted pool belongs to whoever measured it.
  EXPECT_FALSE(adopted.Terminate().ok());

  // Mismatched matrix/pool sizes fail cleanly.
  DeploymentSession bad(/*cloud=*/nullptr, &app, FastOptions());
  EXPECT_FALSE(
      bad.AdoptMeasurement(measured.allocated(), deploy::CostMatrix(3), 0.0)
          .ok());

  // A cloud-less session cannot allocate or measure on its own.
  DeploymentSession no_cloud(/*cloud=*/nullptr, &app, FastOptions());
  EXPECT_FALSE(no_cloud.Allocate().ok());
  EXPECT_FALSE(no_cloud.Measure().ok());
}

TEST(DeploymentSessionTest, ReAdoptionRefreshesTheMatrixInPlace) {
  // The redeployment re-solve path: when drift monitoring refreshes an
  // environment's matrix, the same session adopts the fresh costs and keeps
  // solving -- no new session per refresh.
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 59);
  graph::CommGraph app = graph::Mesh2D(4, 5);
  DeploymentSession measured(&cloud, &app, FastOptions());
  ASSERT_TRUE(measured.Measure().ok());

  DeploymentSession session(/*cloud=*/nullptr, &app, FastOptions());
  ASSERT_TRUE(session
                  .AdoptMeasurement(measured.allocated(), measured.costs(),
                                    measured.measure_virtual_s())
                  .ok());
  SolveSpec spec;
  spec.method = "g2";
  spec.seed = 3;
  auto stale = session.Solve(spec);
  ASSERT_TRUE(stale.ok());

  // "The network drifted": every link doubled.
  deploy::CostMatrix refreshed = measured.costs();
  for (int i = 0; i < refreshed.size(); ++i) {
    for (int j = 0; j < refreshed.size(); ++j) {
      if (i != j) refreshed.At(i, j) *= 2.0;
    }
  }
  ASSERT_TRUE(session
                  .AdoptMeasurement(measured.allocated(), refreshed,
                                    measured.measure_virtual_s())
                  .ok());
  EXPECT_EQ(session.costs(), refreshed);
  EXPECT_EQ(session.solves().size(), 1u) << "history survives re-adoption";

  auto fresh = session.Solve(spec);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(session.solves().size(), 2u);
  // Same deterministic solver on a uniformly doubled matrix: same plan,
  // doubled cost -- the re-solve really ran against the fresh matrix.
  EXPECT_EQ(fresh->result.deployment, stale->result.deployment);
  EXPECT_DOUBLE_EQ(fresh->cost_ms, 2.0 * stale->cost_ms);

  // Re-adoption still refuses the pools a session owns: the measuring
  // session allocated its own instances and must keep them.
  EXPECT_FALSE(measured
                   .AdoptMeasurement(measured.allocated(), refreshed,
                                     measured.measure_virtual_s())
                   .ok());
}

TEST(DeploymentSessionTest, SharedIncumbentCellCarriesSolutionsAcrossSolves) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 59);
  graph::CommGraph app = graph::Mesh2D(4, 5);
  DeploymentSession session(&cloud, &app, FastOptions());
  ASSERT_TRUE(session.Measure().ok());

  auto cell = std::make_shared<deploy::SharedIncumbent>();
  SolveSpec spec;
  spec.method = "local";
  spec.time_budget_s = 1.0;
  spec.shared_incumbent = cell;
  auto solve = session.Solve(spec);
  ASSERT_TRUE(solve.ok());

  double cell_cost = 0.0;
  deploy::Deployment cell_deployment;
  ASSERT_TRUE(cell->Snapshot(&cell_cost, &cell_deployment));
  EXPECT_LE(cell_cost, solve->cost_ms + 1e-9);
  EXPECT_EQ(cell_deployment.size(), 20u);
}

TEST(DeploymentSessionTest, AdvisorWrapperMatchesSessionPipeline) {
  // The one-shot Advisor is a thin wrapper over DeploymentSession: same
  // cloud seed + config must produce the identical deployment either way.
  AdvisorConfig config;
  config.method = deploy::Method::kGreedyG2;  // deterministic given the seed
  config.search_budget_s = 1.0;
  config.measure_duration_s = 20.0;
  config.seed = 7;
  graph::CommGraph app = graph::Mesh2D(4, 5);

  net::CloudSimulator cloud_a(net::AmazonEc2Profile(), 41);
  Advisor advisor(&cloud_a, config);
  auto report = advisor.Run(app);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  net::CloudSimulator cloud_b(net::AmazonEc2Profile(), 41);
  DeploymentSession session(&cloud_b, &app, FastOptions(config.seed));
  SolveSpec spec;
  spec.method = "g2";
  spec.time_budget_s = config.search_budget_s;
  spec.seed = config.seed;
  auto solve = session.Solve(spec);
  ASSERT_TRUE(solve.ok()) << solve.status().ToString();

  EXPECT_EQ(report->solve.deployment, solve->result.deployment);
  EXPECT_DOUBLE_EQ(report->optimized_cost_ms, solve->cost_ms);
  EXPECT_DOUBLE_EQ(report->default_cost_ms, solve->default_cost_ms);
}

}  // namespace
}  // namespace cloudia
