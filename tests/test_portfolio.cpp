#include "deploy/portfolio.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "cloudia/session.h"
#include "common/timer.h"
#include "deploy/solve.h"
#include "deploy/solver_registry.h"
#include "deploy_test_util.h"
#include "graph/templates.h"
#include "netsim/cloud.h"

namespace cloudia::deploy {
namespace {

// Deterministic member set: g1 and r1 ignore the budget entirely and local
// search stops after its restarts, so results depend only on the seed (and,
// with one thread, on the FIFO execution order) -- never on wall-clock speed.
const std::vector<std::string> kDeterministicMembers = {"g1", "r1", "local"};

NdpSolveOptions DeterministicOptions(uint64_t seed, int threads) {
  NdpSolveOptions options;
  options.objective = Objective::kLongestLink;
  options.portfolio_members = kDeterministicMembers;
  options.threads = threads;
  options.r1_samples = 200;
  options.seed = seed;
  return options;
}

Result<NdpSolveResult> RunByName(const graph::CommGraph& graph,
                                 const CostMatrix& costs,
                                 const std::string& method,
                                 const NdpSolveOptions& options,
                                 double budget_s) {
  SolveContext context(Deadline::After(budget_s));
  return SolveNodeDeploymentByName(graph, costs, method, options, context);
}

TEST(PortfolioTest, RegistryExposesThePortfolio) {
  const NdpSolver* solver = SolverRegistry::Global().Find("portfolio");
  ASSERT_NE(solver, nullptr);
  EXPECT_STREQ(solver->name(), "portfolio");
  EXPECT_STREQ(solver->display_name(), "Portfolio");
  EXPECT_TRUE(solver->Supports(Objective::kLongestLink));
  EXPECT_TRUE(solver->Supports(Objective::kLongestPath));

  auto parsed = ParseMethod("portfolio");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, Method::kPortfolio);
  EXPECT_STREQ(MethodKey(Method::kPortfolio), "portfolio");
  EXPECT_STREQ(MethodName(Method::kPortfolio), "Portfolio");

  bool listed = false;
  for (const std::string& name : SolverRegistry::Global().Names()) {
    if (name == "portfolio") listed = true;
  }
  EXPECT_TRUE(listed) << "--help discovers methods through Names()";
}

TEST(PortfolioTest, DeterministicUnderFixedSeedAndSingleThread) {
  Rng rng(91);
  CostMatrix costs = RandomCosts(12, rng);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);

  auto first = RunByName(mesh, costs, "portfolio",
                         DeterministicOptions(/*seed=*/42, /*threads=*/1),
                         /*budget_s=*/30.0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int repeat = 0; repeat < 2; ++repeat) {
    auto again = RunByName(mesh, costs, "portfolio",
                           DeterministicOptions(/*seed=*/42, /*threads=*/1),
                           /*budget_s=*/30.0);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->deployment, first->deployment) << "repeat " << repeat;
    EXPECT_DOUBLE_EQ(again->cost, first->cost) << "repeat " << repeat;
  }
}

TEST(PortfolioTest, NeverWorseThanItsMembersRunSolo) {
  // The acceptance property on 20 randomized instances: the portfolio's
  // incumbent is at most the best of its members run alone with the same
  // seed and budget (members here finish well inside the budget, so the
  // wall clock cannot bias the comparison).
  for (uint64_t instance_seed = 1; instance_seed <= 20; ++instance_seed) {
    Rng rng(instance_seed);
    CostMatrix costs = RandomCosts(10, rng);
    graph::CommGraph mesh = graph::Mesh2D(2, 4);

    double best_solo = std::numeric_limits<double>::infinity();
    for (const std::string& member : kDeterministicMembers) {
      auto solo = RunByName(mesh, costs, member,
                            DeterministicOptions(/*seed=*/7, /*threads=*/1),
                            /*budget_s=*/30.0);
      ASSERT_TRUE(solo.ok()) << member << ": " << solo.status().ToString();
      best_solo = std::min(best_solo, solo->cost);
    }

    auto portfolio = RunByName(mesh, costs, "portfolio",
                               DeterministicOptions(/*seed=*/7, /*threads=*/2),
                               /*budget_s=*/30.0);
    ASSERT_TRUE(portfolio.ok()) << portfolio.status().ToString();
    EXPECT_LE(portfolio->cost, best_solo + 1e-9)
        << "instance seed " << instance_seed;
    EXPECT_TRUE(ValidateDeployment(mesh, portfolio->deployment, costs,
                                   Objective::kLongestLink)
                    .ok())
        << "instance seed " << instance_seed;
  }
}

TEST(PortfolioTest, MergedTraceIsMonotoneAndMatchesTheResult) {
  Rng rng(17);
  CostMatrix costs = RandomCosts(12, rng);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);

  auto result = RunByName(mesh, costs, "portfolio",
                          DeterministicOptions(/*seed=*/3, /*threads=*/4),
                          /*budget_s=*/30.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->trace.empty());
  for (size_t i = 1; i < result->trace.size(); ++i) {
    EXPECT_LT(result->trace[i].cost, result->trace[i - 1].cost)
        << "global trace must be strictly improving";
    EXPECT_GE(result->trace[i].seconds, result->trace[i - 1].seconds);
  }
  EXPECT_DOUBLE_EQ(result->trace.back().cost, result->cost);
}

TEST(PortfolioTest, ProvenOptimalitySettlesTheRaceEarly) {
  // CP proves optimality on a tiny instance within milliseconds; that must
  // cancel the budget-bound r2 member instead of letting it spin for the
  // full 30 s budget.
  Rng rng(5);
  CostMatrix costs = RandomCosts(5, rng);
  graph::CommGraph mesh = graph::Mesh2D(2, 2);

  NdpSolveOptions options;
  options.portfolio_members = {"cp", "r2"};
  options.threads = 2;
  options.seed = 9;

  Stopwatch clock;
  auto result = RunByName(mesh, costs, "portfolio", options,
                          /*budget_s=*/30.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_LT(clock.ElapsedSeconds(), 10.0)
      << "optimality must cancel the remaining members";
  EXPECT_NEAR(result->cost,
              BruteForceOptimum(mesh, costs, Objective::kLongestLink), 1e-9);
}

TEST(PortfolioTest, MidRunCancellationReleasesAllWorkers) {
  Rng rng(23);
  CostMatrix costs = RandomCosts(14, rng);
  graph::CommGraph mesh = graph::Mesh2D(3, 4);

  NdpSolveOptions options;
  options.portfolio_members = {"r2", "local", "r1"};
  options.threads = 4;
  options.seed = 13;

  CancelToken cancel;
  SolveContext context(Deadline::After(30.0), cancel);
  Result<NdpSolveResult> result = Status::Internal("not run");
  Stopwatch clock;
  std::thread solver_thread([&] {
    result = SolveNodeDeploymentByName(mesh, costs, "portfolio", options,
                                       context);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cancel.Cancel();
  // Solve() returning means every member (and the pool) wound down; a leaked
  // or deadlocked worker would hang this join until the 30 s budget -- or
  // forever. TSan (preset `tsan`) additionally checks the teardown is clean.
  solver_thread.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(clock.ElapsedSeconds(), 10.0)
      << "cancel must cut the 30 s budget short";
  EXPECT_TRUE(ValidateDeployment(mesh, result->deployment, costs,
                                 Objective::kLongestLink)
                  .ok());
}

TEST(PortfolioTest, LpndpObjectiveSkipsCpAndStillSolves) {
  // The default member set includes LLNDP-only CP; under longest-path it is
  // skipped while mip/local/r2 carry the race.
  Rng rng(29);
  CostMatrix costs = RandomCosts(10, rng);
  graph::CommGraph tree = graph::AggregationTree(2, 3);

  NdpSolveOptions options;
  options.objective = Objective::kLongestPath;
  options.threads = 2;
  options.seed = 3;
  auto result = RunByName(tree, costs, "portfolio", options, /*budget_s=*/2.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateDeployment(tree, result->deployment, costs,
                                 Objective::kLongestPath)
                  .ok());
}

TEST(PortfolioTest, BadMemberConfigurationsFailCleanly) {
  Rng rng(31);
  CostMatrix costs = RandomCosts(6, rng);
  graph::CommGraph mesh = graph::Mesh2D(2, 2);

  NdpSolveOptions options;
  options.portfolio_members = {"annealing"};
  auto unknown = RunByName(mesh, costs, "portfolio", options, 1.0);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  options.portfolio_members = {"portfolio"};
  auto recursive = RunByName(mesh, costs, "portfolio", options, 1.0);
  ASSERT_FALSE(recursive.ok());
  EXPECT_EQ(recursive.status().code(), StatusCode::kInvalidArgument);

  // CP is the only requested member but cannot solve LPNDP: no member left.
  // (LPNDP needs an acyclic graph, hence the tree.)
  graph::CommGraph tree = graph::AggregationTree(2, 2);
  options.portfolio_members = {"cp"};
  options.objective = Objective::kLongestPath;
  auto unsupported = RunByName(tree, costs, "portfolio", options, 1.0);
  ASSERT_FALSE(unsupported.ok());
  EXPECT_EQ(unsupported.status().code(), StatusCode::kInvalidArgument);
}

TEST(PortfolioTest, EnumFacadeReachesThePortfolio) {
  Rng rng(37);
  CostMatrix costs = RandomCosts(8, rng);
  graph::CommGraph mesh = graph::Mesh2D(2, 3);

  NdpSolveOptions options = DeterministicOptions(/*seed=*/5, /*threads=*/2);
  options.method = Method::kPortfolio;
  options.time_budget_s = 10.0;
  auto result = SolveNodeDeployment(mesh, costs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateDeployment(mesh, result->deployment, costs,
                                 Objective::kLongestLink)
                  .ok());
}

TEST(PortfolioTest, SessionSolvesWithThePortfolio) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 43);
  graph::CommGraph app = graph::Mesh2D(3, 4);
  cloudia::SessionOptions session_options;
  session_options.measure_duration_s = 20.0;
  session_options.seed = 7;
  cloudia::DeploymentSession session(&cloud, &app, session_options);

  cloudia::SolveSpec spec;
  spec.method = "portfolio";
  spec.portfolio_members = {"g2", "local", "r1"};
  spec.threads = 2;
  spec.time_budget_s = 10.0;
  spec.seed = 11;
  auto solve = session.Solve(spec);
  ASSERT_TRUE(solve.ok()) << solve.status().ToString();
  EXPECT_EQ(solve->method, "portfolio");
  EXPECT_EQ(solve->placement.size(), 12u);
  EXPECT_TRUE(ValidateDeployment(app, solve->result.deployment,
                                 session.costs(), spec.objective)
                  .ok());
  EXPECT_LE(solve->cost_ms, solve->default_cost_ms + 1e-9);
}

}  // namespace
}  // namespace cloudia::deploy
