#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "measure/io.h"

namespace cloudia::measure {
namespace {

std::vector<std::vector<double>> RandomMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> m(static_cast<size_t>(n),
                                     std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) m[static_cast<size_t>(i)][static_cast<size_t>(j)] = rng.Uniform(0.2, 1.4);
    }
  }
  return m;
}

TEST(MeasureIoTest, RoundTripPreservesEverything) {
  auto m = RandomMatrix(7, 3);
  std::string text = CostMatrixToString(m, "Mean");
  auto loaded = CostMatrixFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->metric_name, "Mean");
  ASSERT_EQ(loaded->costs.size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(loaded->costs[i][j], m[i][j]) << i << "," << j;
    }
  }
}

TEST(MeasureIoTest, EmptyMatrixRoundTrips) {
  std::vector<std::vector<double>> empty;
  auto loaded = CostMatrixFromString(CostMatrixToString(empty, "Mean"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->costs.empty());
}

TEST(MeasureIoTest, RejectsCorruptedContent) {
  auto m = RandomMatrix(3, 4);
  std::string good = CostMatrixToString(m, "99%");
  EXPECT_FALSE(CostMatrixFromString("garbage\n" + good).ok());
  EXPECT_FALSE(CostMatrixFromString("").ok());
  // Truncated: drop the last row.
  std::string truncated = good.substr(0, good.rfind("row 2:"));
  EXPECT_FALSE(CostMatrixFromString(truncated).ok());
  // Extra cell on a row.
  std::string padded = good;
  padded.insert(padded.rfind('\n'), " 0.5");
  EXPECT_FALSE(CostMatrixFromString(padded).ok());
}

TEST(MeasureIoTest, MetricNameWithSpacesSurvives) {
  auto m = RandomMatrix(2, 5);
  auto loaded = CostMatrixFromString(CostMatrixToString(m, "Mean+SD"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->metric_name, "Mean+SD");
}

TEST(MeasureIoTest, FileRoundTrip) {
  auto m = RandomMatrix(5, 6);
  std::string path = ::testing::TempDir() + "/cloudia_costs_test.txt";
  ASSERT_TRUE(SaveCostMatrix(path, m, "Mean").ok());
  auto loaded = LoadCostMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->costs[1][2], m[1][2]);
  std::remove(path.c_str());
}

TEST(MeasureIoTest, MissingFileIsNotFound) {
  auto loaded = LoadCostMatrix("/nonexistent/path/costs.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cloudia::measure
