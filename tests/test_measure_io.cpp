#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "measure/io.h"

namespace cloudia::measure {
namespace {

deploy::CostMatrix RandomMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  deploy::CostMatrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) m.At(i, j) = rng.Uniform(0.2, 1.4);
    }
  }
  return m;
}

TEST(MeasureIoTest, RoundTripPreservesEverything) {
  auto m = RandomMatrix(7, 3);
  std::string text = CostMatrixToString(m, "Mean");
  auto loaded = CostMatrixFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->metric_name, "Mean");
  ASSERT_EQ(loaded->costs.size(), 7);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(loaded->costs.At(i, j), m.At(i, j)) << i << "," << j;
    }
  }
}

TEST(MeasureIoTest, EmptyMatrixRoundTrips) {
  deploy::CostMatrix empty;
  auto loaded = CostMatrixFromString(CostMatrixToString(empty, "Mean"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->costs.empty());
}

TEST(MeasureIoTest, RejectsCorruptedContent) {
  auto m = RandomMatrix(3, 4);
  std::string good = CostMatrixToString(m, "99%");
  EXPECT_FALSE(CostMatrixFromString("garbage\n" + good).ok());
  EXPECT_FALSE(CostMatrixFromString("").ok());
  // Truncated: drop the last row.
  std::string truncated = good.substr(0, good.rfind("row 2:"));
  EXPECT_FALSE(CostMatrixFromString(truncated).ok());
  // Extra cell on a row.
  std::string padded = good;
  padded.insert(padded.rfind('\n'), " 0.5");
  EXPECT_FALSE(CostMatrixFromString(padded).ok());
}

// A hostile instance count must be a clean parse error: the count is used
// to size an n^2 allocation, and values above int range once truncated the
// matrix dimension while the fill loop kept running to the full count
// (heap corruption in release builds).
TEST(MeasureIoTest, RejectsOverlargeInstanceCounts) {
  for (const char* n_line :
       {"n 4294967301", "n 9223372036854775807", "n 99999999999999999999",
        "n 65537"}) {
    std::string text = std::string("cloudia-cost-matrix v1\n") + n_line +
                       "\nmetric Mean\n";
    auto loaded = CostMatrixFromString(text);
    ASSERT_FALSE(loaded.ok()) << n_line;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument) << n_line;
  }
}

TEST(MeasureIoTest, MetricNameWithSpacesSurvives) {
  auto m = RandomMatrix(2, 5);
  auto loaded = CostMatrixFromString(CostMatrixToString(m, "Mean+SD"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->metric_name, "Mean+SD");
}

TEST(MeasureIoTest, FileRoundTrip) {
  auto m = RandomMatrix(5, 6);
  std::string path = ::testing::TempDir() + "/cloudia_costs_test.txt";
  ASSERT_TRUE(SaveCostMatrix(path, m, "Mean").ok());
  auto loaded = LoadCostMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->costs.At(1, 2), m.At(1, 2));
  std::remove(path.c_str());
}

TEST(MeasureIoTest, MissingFileIsNotFound) {
  auto loaded = LoadCostMatrix("/nonexistent/path/costs.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cloudia::measure
