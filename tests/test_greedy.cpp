#include <gtest/gtest.h>

#include "deploy/greedy.h"
#include "deploy/random_search.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

TEST(GreedyTest, ProducesValidInjection) {
  Rng rng(1);
  CostMatrix costs = RandomCosts(12, rng);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  for (auto* fn : {&GreedyG1, &GreedyG2}) {
    Rng r(7);
    auto d = (*fn)(mesh, costs, r);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(
        ValidateDeployment(mesh, *d, costs, Objective::kLongestLink).ok());
  }
}

TEST(GreedyTest, RejectsTooManyNodes) {
  Rng rng(2);
  CostMatrix costs = RandomCosts(4, rng);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);  // 9 nodes > 4 instances
  Rng r(1);
  EXPECT_FALSE(GreedyG1(mesh, costs, r).ok());
}

TEST(GreedyTest, HandlesTinyGraphs) {
  Rng rng(3);
  CostMatrix costs = RandomCosts(5, rng);
  {
    auto g = graph::CommGraph::Create(0, {});
    Rng r(1);
    auto d = GreedyG1(*g, costs, r);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(d->empty());
  }
  {
    auto g = graph::CommGraph::Create(1, {});
    Rng r(1);
    auto d = GreedyG2(*g, costs, r);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->size(), 1u);
  }
}

TEST(GreedyTest, HandlesDisconnectedGraphs) {
  Rng rng(4);
  CostMatrix costs = RandomCosts(10, rng);
  // Two disjoint edges plus two isolated nodes.
  auto g = graph::CommGraph::Create(6, {{0, 1}, {2, 3}});
  ASSERT_TRUE(g.ok());
  for (auto* fn : {&GreedyG1, &GreedyG2}) {
    Rng r(11);
    auto d = (*fn)(*g, costs, r);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(
        ValidateDeployment(*g, *d, costs, Objective::kLongestLink).ok());
  }
}

TEST(GreedyTest, G1PicksCheapestPairForFirstEdge) {
  // Craft costs where pair (2, 3) is globally cheapest; G1 must start there.
  CostMatrix costs(5, 1.0);
  for (int i = 0; i < 5; ++i) costs.At(i, i) = 0;
  costs.At(2, 3) = 0.1;
  auto g = graph::CommGraph::Create(2, {{0, 1}});
  Rng r(5);
  auto d = GreedyG1(*g, costs, r);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)[0], 2);
  EXPECT_EQ((*d)[1], 3);
}

TEST(GreedyTest, G2AvoidsExpensiveImplicitLinks) {
  // Triangle pattern. Instances: {0,1,2,3}. Explicit costs make instance 3
  // the cheapest next hop from every node, but its links back to earlier
  // deployment are terrible; a good G2 avoids it, G1 falls for it.
  //
  // Cost design: cheap pair (0,1) = 0.1 seeds the first edge. For the third
  // node: instance 2 costs 0.5 from/to both 0 and 1; instance 3 costs 0.2
  // from 0 but 5.0 from/to 1.
  CostMatrix costs(4, 5.0);
  for (int i = 0; i < 4; ++i) costs.At(i, i) = 0;
  auto set_pair = [&costs](int a, int b, double v) {
    costs.At(a, b) = v;
    costs.At(b, a) = v;
  };
  set_pair(0, 1, 0.1);
  set_pair(0, 2, 0.5);
  set_pair(1, 2, 0.5);
  set_pair(0, 3, 0.2);
  // (1,3) stays 5.0.
  auto g = graph::CommGraph::Create(
      3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}});
  ASSERT_TRUE(g.ok());
  Rng r1(42), r2(42);
  auto d1 = GreedyG1(*g, costs, r1);
  auto d2 = GreedyG2(*g, costs, r2);
  ASSERT_TRUE(d1.ok() && d2.ok());
  double c1 = LongestLinkCost(*g, *d1, costs);
  double c2 = LongestLinkCost(*g, *d2, costs);
  EXPECT_DOUBLE_EQ(c2, 0.5);  // G2 places the third node on instance 2
  EXPECT_DOUBLE_EQ(c1, 5.0);  // G1 grabs the cheap explicit 0.2 link
  EXPECT_LT(c2, c1);
}

TEST(GreedyTest, G2BeatsG1OnAverageOverRandomInstances) {
  // Statistical version of the paper's Fig. 14 finding (G1 worst).
  Rng master(17);
  double g1_total = 0, g2_total = 0;
  const int trials = 25;
  graph::CommGraph mesh = graph::Mesh2D(3, 4);
  for (int t = 0; t < trials; ++t) {
    CostMatrix costs = RandomCosts(14, master);
    Rng r1(master.Next()), r2(r1);
    auto d1 = GreedyG1(mesh, costs, r1);
    auto d2 = GreedyG2(mesh, costs, r2);
    ASSERT_TRUE(d1.ok() && d2.ok());
    g1_total += LongestLinkCost(mesh, *d1, costs);
    g2_total += LongestLinkCost(mesh, *d2, costs);
  }
  EXPECT_LT(g2_total, g1_total);
}

TEST(GreedyTest, DeterministicGivenSeed) {
  Rng master(19);
  CostMatrix costs = RandomCosts(12, master);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  Rng a(3), b(3);
  auto d1 = GreedyG2(mesh, costs, a);
  auto d2 = GreedyG2(mesh, costs, b);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(*d1, *d2);
}

}  // namespace
}  // namespace cloudia::deploy
