#include <gtest/gtest.h>

#include "graph/templates.h"
#include "workloads/aggregation.h"
#include "workloads/behavioral.h"
#include "workloads/kvstore.h"

namespace cloudia::wl {
namespace {

class WorkloadsTest : public ::testing::Test {
 protected:
  WorkloadsTest() : cloud_(net::AmazonEc2Profile(), 31) {
    auto alloc = cloud_.Allocate(40);
    CLOUDIA_CHECK(alloc.ok());
    instances_ = std::move(alloc).value();
  }

  NodePlacement FirstN(int n) const {
    return NodePlacement(instances_.begin(), instances_.begin() + n);
  }

  // Placement minimizing/maximizing the worst mesh link, found greedily from
  // expected RTTs, to create a clear good-vs-bad deployment contrast.
  NodePlacement PlacementWithWorstLink(const graph::CommGraph& g, bool bad) {
    // Order instances by average RTT to everyone; good placements use the
    // best-connected prefix, bad ones the worst-connected suffix.
    std::vector<std::pair<double, size_t>> avg;
    for (size_t i = 0; i < instances_.size(); ++i) {
      double sum = 0;
      for (size_t j = 0; j < instances_.size(); ++j) {
        if (i != j) sum += cloud_.ExpectedRtt(instances_[i], instances_[j]);
      }
      avg.push_back({sum, i});
    }
    std::sort(avg.begin(), avg.end());
    NodePlacement p;
    size_t n = static_cast<size_t>(g.num_nodes());
    for (size_t k = 0; k < n; ++k) {
      size_t idx = bad ? avg[avg.size() - 1 - k].second : avg[k].second;
      p.push_back(instances_[idx]);
    }
    return p;
  }

  net::CloudSimulator cloud_;
  std::vector<net::Instance> instances_;
};

TEST_F(WorkloadsTest, BehavioralBasics) {
  graph::CommGraph mesh = graph::Mesh2D(4, 4);
  BehavioralConfig cfg;
  cfg.ticks = 300;
  auto r = RunBehavioralSimulation(cloud_, mesh, FirstN(16), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->primary_ms, 0);
  EXPECT_EQ(r->operations, 300);
  // Each tick is at least the worst-link mean; total grows with ticks.
  BehavioralConfig cfg2 = cfg;
  cfg2.ticks = 600;
  auto r2 = RunBehavioralSimulation(cloud_, mesh, FirstN(16), cfg2);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->primary_ms, 1.5 * r->primary_ms);
}

TEST_F(WorkloadsTest, BehavioralRejectsBadInput) {
  graph::CommGraph mesh = graph::Mesh2D(4, 4);
  BehavioralConfig cfg;
  EXPECT_FALSE(RunBehavioralSimulation(cloud_, mesh, FirstN(4), cfg).ok());
  cfg.ticks = 0;
  EXPECT_FALSE(RunBehavioralSimulation(cloud_, mesh, FirstN(16), cfg).ok());
}

TEST_F(WorkloadsTest, BehavioralSensitiveToWorstLink) {
  // A deployment over well-connected instances must finish faster: this is
  // the mechanism behind the paper's Fig. 12 gains.
  graph::CommGraph mesh = graph::Mesh2D(4, 4);
  BehavioralConfig cfg;
  cfg.ticks = 400;
  cfg.seed = 5;
  auto good = RunBehavioralSimulation(cloud_, mesh,
                                      PlacementWithWorstLink(mesh, false), cfg);
  auto bad = RunBehavioralSimulation(cloud_, mesh,
                                     PlacementWithWorstLink(mesh, true), cfg);
  ASSERT_TRUE(good.ok() && bad.ok());
  EXPECT_LT(good->primary_ms, bad->primary_ms);
}

TEST_F(WorkloadsTest, BehavioralDeterministicGivenSeed) {
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  BehavioralConfig cfg;
  cfg.ticks = 100;
  cfg.seed = 9;
  auto a = RunBehavioralSimulation(cloud_, mesh, FirstN(9), cfg);
  auto b = RunBehavioralSimulation(cloud_, mesh, FirstN(9), cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->primary_ms, b->primary_ms);
}

TEST_F(WorkloadsTest, AggregationBasics) {
  graph::CommGraph tree = graph::AggregationTree(3, 3);  // 13 nodes
  AggregationConfig cfg;
  cfg.queries = 400;
  auto r = RunAggregationQueries(cloud_, tree, FirstN(13), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->primary_ms, 0);
  EXPECT_GE(r->p99_ms, r->primary_ms);
  EXPECT_EQ(r->operations, 400);
}

TEST_F(WorkloadsTest, AggregationNeedsDag) {
  graph::CommGraph ring = graph::Ring(5);
  AggregationConfig cfg;
  EXPECT_FALSE(RunAggregationQueries(cloud_, ring, FirstN(5), cfg).ok());
}

TEST_F(WorkloadsTest, AggregationResponseAtLeastDeepestHop) {
  // With 2 levels the response is a single one-way transfer; with 4 levels
  // the critical path sums three transfers -- responses must grow.
  AggregationConfig cfg;
  cfg.queries = 300;
  graph::CommGraph shallow = graph::AggregationTree(3, 2);   // 4 nodes
  graph::CommGraph deep = graph::AggregationTree(2, 4);      // 15 nodes
  auto a = RunAggregationQueries(cloud_, shallow, FirstN(4), cfg);
  auto b = RunAggregationQueries(cloud_, deep, FirstN(15), cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->primary_ms, a->primary_ms);
}

TEST_F(WorkloadsTest, KvStoreBasics) {
  graph::CommGraph bip = graph::Bipartite(4, 16);
  KvStoreConfig cfg;
  cfg.queries = 500;
  auto r = RunKvStoreQueries(cloud_, bip, FirstN(20), cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->primary_ms, 0);
  EXPECT_EQ(r->operations, 500);
}

TEST_F(WorkloadsTest, KvStoreTouchingMoreNodesIsSlower) {
  graph::CommGraph bip = graph::Bipartite(4, 16);
  KvStoreConfig narrow, wide;
  narrow.queries = wide.queries = 500;
  narrow.touched_per_query = 2;
  wide.touched_per_query = 16;
  narrow.seed = wide.seed = 3;
  auto a = RunKvStoreQueries(cloud_, bip, FirstN(20), narrow);
  auto b = RunKvStoreQueries(cloud_, bip, FirstN(20), wide);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->primary_ms, b->primary_ms);  // max over more draws is larger
}

TEST_F(WorkloadsTest, KvStoreRejectsGraphWithoutFrontends) {
  auto g = graph::CommGraph::Create(3, {});
  KvStoreConfig cfg;
  EXPECT_FALSE(RunKvStoreQueries(cloud_, *g, FirstN(3), cfg).ok());
}

}  // namespace
}  // namespace cloudia::wl
