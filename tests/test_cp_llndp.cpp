#include <gtest/gtest.h>

#include "deploy/cp_llndp.h"
#include "deploy/random_search.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

TEST(CpLlndpTest, OptimalOnTinyInstancesVsBruteForce) {
  Rng master(11);
  for (int trial = 0; trial < 12; ++trial) {
    int n = 4 + static_cast<int>(master.Below(3));  // 4..6 nodes
    int m = n + 1 + static_cast<int>(master.Below(2));
    graph::CommGraph g = graph::RandomSymmetric(n, 2.5, master);
    CostMatrix costs = RandomCosts(m, master);
    CpLlndpOptions opts;
    opts.seed = master.Next();
    auto r = SolveLlndpCp(g, costs, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->proven_optimal);
    double expected = BruteForceOptimum(g, costs, Objective::kLongestLink);
    EXPECT_NEAR(r->cost, expected, 1e-9) << "trial " << trial;
    EXPECT_TRUE(ValidateDeployment(g, r->deployment, costs,
                                   Objective::kLongestLink)
                    .ok());
  }
}

TEST(CpLlndpTest, TraceIsStrictlyImproving) {
  Rng master(13);
  graph::CommGraph mesh = graph::Mesh2D(3, 4);
  CostMatrix costs = RandomCosts(15, master);
  CpLlndpOptions opts;
  opts.seed = 5;
  auto r = SolveLlndpCp(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->trace.size(), 1u);
  for (size_t i = 1; i < r->trace.size(); ++i) {
    EXPECT_LT(r->trace[i].cost, r->trace[i - 1].cost);
    EXPECT_GE(r->trace[i].seconds, r->trace[i - 1].seconds);
  }
  EXPECT_DOUBLE_EQ(r->trace.back().cost, r->cost);
}

TEST(CpLlndpTest, NeverWorseThanBootstrap) {
  Rng master(17);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(11, master);
  auto boot = BootstrapDeployment(mesh, costs, Objective::kLongestLink, 9);
  ASSERT_TRUE(boot.ok());
  double boot_cost = LongestLinkCost(mesh, *boot, costs);
  CpLlndpOptions opts;
  opts.seed = 9;
  auto r = SolveLlndpCp(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->cost, boot_cost);
}

TEST(CpLlndpTest, ClusteringApproximatesButStaysFeasible) {
  Rng master(19);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(12, master);
  CpLlndpOptions exact;
  exact.seed = 3;
  auto r_exact = SolveLlndpCp(mesh, costs, exact);
  CpLlndpOptions k5 = exact;
  k5.cost_clusters = 5;
  auto r_k5 = SolveLlndpCp(mesh, costs, k5);
  ASSERT_TRUE(r_exact.ok() && r_k5.ok());
  EXPECT_TRUE(ValidateDeployment(mesh, r_k5->deployment, costs,
                                 Objective::kLongestLink)
                  .ok());
  // Clustered search cannot beat the exact optimum.
  EXPECT_GE(r_k5->cost, r_exact->cost - 1e-9);
}

TEST(CpLlndpTest, FewerClustersFewerIterations) {
  Rng master(23);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(14, master);
  CpLlndpOptions k5, none;
  k5.cost_clusters = 5;
  k5.seed = none.seed = 31;
  auto r_k5 = SolveLlndpCp(mesh, costs, k5);
  auto r_none = SolveLlndpCp(mesh, costs, none);
  ASSERT_TRUE(r_k5.ok() && r_none.ok());
  EXPECT_LE(r_k5->iterations, r_none->iterations);
}

TEST(CpLlndpTest, RespectsProvidedInitialDeployment) {
  Rng master(29);
  graph::CommGraph mesh = graph::Mesh2D(2, 3);
  CostMatrix costs = RandomCosts(8, master);
  CpLlndpOptions opts;
  opts.initial = {0, 1, 2, 3, 4, 5};
  auto r = SolveLlndpCp(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->cost, LongestLinkCost(mesh, opts.initial, costs));
}

TEST(CpLlndpTest, RejectsInvalidInitial) {
  Rng master(31);
  graph::CommGraph mesh = graph::Mesh2D(2, 2);
  CostMatrix costs = RandomCosts(6, master);
  CpLlndpOptions opts;
  opts.initial = {0, 0, 1, 2};  // not injective
  EXPECT_FALSE(SolveLlndpCp(mesh, costs, opts).ok());
}

TEST(CpLlndpTest, EdgelessGraphTriviallyOptimal) {
  Rng master(37);
  auto g = graph::CommGraph::Create(3, {});
  CostMatrix costs = RandomCosts(5, master);
  auto r = SolveLlndpCp(*g, costs, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->proven_optimal);
  EXPECT_DOUBLE_EQ(r->cost, 0.0);
}

TEST(CpLlndpTest, ZeroDeadlineReturnsBootstrap) {
  Rng master(41);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(11, master);
  CpLlndpOptions opts;
  opts.deadline = Deadline::After(0);
  opts.seed = 1;
  auto r = SolveLlndpCp(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->proven_optimal);
  auto boot = BootstrapDeployment(mesh, costs, Objective::kLongestLink, 1);
  EXPECT_DOUBLE_EQ(r->cost, LongestLinkCost(mesh, *boot, costs));
}

TEST(CpLlndpTest, WarmStartHintsDoNotChangeOptimality) {
  Rng master(43);
  graph::CommGraph mesh = graph::Mesh2D(2, 3);
  CostMatrix costs = RandomCosts(9, master);
  CpLlndpOptions plain, hinted;
  plain.seed = hinted.seed = 2;
  hinted.warm_start_hints = true;
  auto a = SolveLlndpCp(mesh, costs, plain);
  auto b = SolveLlndpCp(mesh, costs, hinted);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->proven_optimal && b->proven_optimal);
  EXPECT_NEAR(a->cost, b->cost, 1e-9);
}

}  // namespace
}  // namespace cloudia::deploy
