#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/stats.h"
#include "netsim/cloud.h"

namespace cloudia::net {
namespace {

TEST(CloudTest, AllocateBasics) {
  CloudSimulator cloud(AmazonEc2Profile(), 1);
  auto alloc = cloud.Allocate(100);
  ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
  EXPECT_EQ(alloc->size(), 100u);
  std::set<int> ids;
  for (const Instance& inst : *alloc) ids.insert(inst.id);
  EXPECT_EQ(ids.size(), 100u);  // distinct ids
}

TEST(CloudTest, RejectsNonPositive) {
  CloudSimulator cloud(AmazonEc2Profile(), 1);
  EXPECT_FALSE(cloud.Allocate(0).ok());
  EXPECT_FALSE(cloud.Allocate(-5).ok());
}

TEST(CloudTest, HostSlotsRespectCapacity) {
  CloudSimulator cloud(AmazonEc2Profile(), 2);
  auto alloc = cloud.Allocate(120);
  ASSERT_TRUE(alloc.ok());
  std::map<int, int> per_host;
  for (const Instance& inst : *alloc) ++per_host[inst.host];
  for (auto& [host, n] : per_host) EXPECT_LE(n, 2);
}

TEST(CloudTest, SomeColocationHappens) {
  CloudSimulator cloud(AmazonEc2Profile(), 3);
  auto alloc = cloud.Allocate(100);
  ASSERT_TRUE(alloc.ok());
  std::map<int, int> per_host;
  for (const Instance& inst : *alloc) ++per_host[inst.host];
  int colocated_hosts = 0;
  for (auto& [host, n] : per_host) colocated_hosts += (n == 2);
  EXPECT_GT(colocated_hosts, 5);  // colocate_prob=0.35 should co-locate some
}

TEST(CloudTest, AllocationStaysWithinOnePod) {
  CloudSimulator cloud(AmazonEc2Profile(), 4);
  auto alloc = cloud.Allocate(100);
  ASSERT_TRUE(alloc.ok());
  std::set<int> pods;
  for (const Instance& inst : *alloc) {
    pods.insert(cloud.topology().PodOf(inst.host));
  }
  EXPECT_EQ(pods.size(), 1u);
}

TEST(CloudTest, TerminateFreesSlots) {
  ProviderProfile p = AmazonEc2Profile();
  p.allocation_racks = 2;  // tiny capacity: 2 racks * 20 hosts * 2 slots = 80
  CloudSimulator cloud(p, 5);
  auto a1 = cloud.Allocate(80);
  ASSERT_TRUE(a1.ok());
  cloud.Terminate(*a1);
  auto a2 = cloud.Allocate(60);
  EXPECT_TRUE(a2.ok()) << a2.status().ToString();
}

TEST(CloudTest, CapacityExhaustionIsReported) {
  ProviderProfile p = AmazonEc2Profile();
  p.allocation_racks = 1;  // 20 hosts * 2 slots = 40 VMs max
  CloudSimulator cloud(p, 6);
  auto r = cloud.Allocate(100);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
}

TEST(CloudTest, ExpectedRttMatrixShape) {
  CloudSimulator cloud(AmazonEc2Profile(), 7);
  auto alloc = cloud.Allocate(10);
  ASSERT_TRUE(alloc.ok());
  auto m = cloud.ExpectedRttMatrix(*alloc);
  ASSERT_EQ(m.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(m[i][i], 0.0);
    for (size_t j = 0; j < 10; ++j) {
      if (i != j) {
        EXPECT_GT(m[i][j], 0.0);
      }
    }
  }
}

// Calibration against paper Fig. 1: CDF of mean pairwise latencies of 100
// m1.large instances; ~10% of pairs above 0.7 ms, bottom ~10% below 0.4 ms,
// range roughly [0.2, 1.4] ms.
TEST(CloudTest, Ec2LatencyCdfMatchesPaperFig1) {
  CloudSimulator cloud(AmazonEc2Profile(), 8);
  auto alloc = cloud.Allocate(100);
  ASSERT_TRUE(alloc.ok());
  std::vector<double> lat;
  for (size_t i = 0; i < alloc->size(); ++i) {
    for (size_t j = 0; j < alloc->size(); ++j) {
      if (i == j) continue;
      lat.push_back(cloud.ExpectedRtt((*alloc)[i], (*alloc)[j]));
    }
  }
  double q10 = Percentile(lat, 10), q90 = Percentile(lat, 90);
  double lo = Percentile(lat, 0.5), hi = Percentile(lat, 99.5);
  EXPECT_LT(q10, 0.45) << "bottom decile should be below ~0.4-0.45 ms";
  EXPECT_GT(q90, 0.62) << "top decile should exceed ~0.65-0.7 ms";
  EXPECT_GT(lo, 0.15);
  EXPECT_LT(hi, 1.6);
  double median = Percentile(lat, 50);
  EXPECT_GT(median, 0.40);
  EXPECT_LT(median, 0.75);
}

// Calibration against paper Fig. 18 (GCE) and Fig. 20 (Rackspace): narrower
// heterogeneity, lower absolute levels.
TEST(CloudTest, GceAndRackspaceCdfShapes) {
  {
    CloudSimulator cloud(GoogleComputeEngineProfile(), 9);
    auto alloc = cloud.Allocate(50);
    ASSERT_TRUE(alloc.ok());
    std::vector<double> lat;
    for (size_t i = 0; i < alloc->size(); ++i)
      for (size_t j = 0; j < alloc->size(); ++j)
        if (i != j) lat.push_back(cloud.ExpectedRtt((*alloc)[i], (*alloc)[j]));
    EXPECT_LT(Percentile(lat, 5), 0.37);
    EXPECT_GT(Percentile(lat, 95), 0.47);
    EXPECT_LT(Percentile(lat, 99.5), 0.9);
  }
  {
    CloudSimulator cloud(RackspaceCloudProfile(), 10);
    auto alloc = cloud.Allocate(50);
    ASSERT_TRUE(alloc.ok());
    std::vector<double> lat;
    for (size_t i = 0; i < alloc->size(); ++i)
      for (size_t j = 0; j < alloc->size(); ++j)
        if (i != j) lat.push_back(cloud.ExpectedRtt((*alloc)[i], (*alloc)[j]));
    EXPECT_LT(Percentile(lat, 5), 0.29);
    EXPECT_GT(Percentile(lat, 95), 0.36);
  }
}

TEST(CloudTest, HopCountTakesKnownValues) {
  CloudSimulator cloud(AmazonEc2Profile(), 11);
  auto alloc = cloud.Allocate(100);
  ASSERT_TRUE(alloc.ok());
  std::set<int> hops;
  for (size_t i = 0; i < alloc->size(); ++i) {
    for (size_t j = i + 1; j < alloc->size(); ++j) {
      hops.insert(cloud.HopCount((*alloc)[i], (*alloc)[j]));
    }
  }
  // Within one pod we can only see same-host/same-rack/same-pod: {0, 1, 3}
  // -- exactly the values the paper observed (Fig. 17).
  for (int h : hops) EXPECT_TRUE(h == 0 || h == 1 || h == 3) << h;
  EXPECT_TRUE(hops.count(3));
}

TEST(CloudTest, IpDistanceDefinition) {
  auto ip = [](int a, int b, int c, int d) {
    return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
           (static_cast<uint32_t>(c) << 8) | static_cast<uint32_t>(d);
  };
  EXPECT_EQ(CloudSimulator::IpDistance(ip(10, 1, 2, 3), ip(10, 1, 2, 3)), 0);
  EXPECT_EQ(CloudSimulator::IpDistance(ip(10, 1, 2, 3), ip(10, 1, 2, 9)), 1);
  EXPECT_EQ(CloudSimulator::IpDistance(ip(10, 1, 2, 3), ip(10, 1, 7, 3)), 2);
  EXPECT_EQ(CloudSimulator::IpDistance(ip(10, 1, 2, 3), ip(10, 9, 2, 3)), 3);
  EXPECT_EQ(CloudSimulator::IpDistance(ip(10, 1, 2, 3), ip(11, 1, 2, 3)), 4);
  // Finer granularity: 16-bit groups.
  EXPECT_EQ(CloudSimulator::IpDistance(ip(10, 1, 2, 3), ip(10, 1, 7, 3), 16), 1);
  EXPECT_EQ(CloudSimulator::IpDistance(ip(10, 1, 2, 3), ip(10, 9, 2, 3), 16), 2);
}

TEST(CloudTest, SameHostPairsHaveIpDistanceTwo) {
  CloudSimulator cloud(AmazonEc2Profile(), 12);
  auto alloc = cloud.Allocate(120);
  ASSERT_TRUE(alloc.ok());
  std::map<int, std::vector<const Instance*>> by_host;
  for (const Instance& inst : *alloc) by_host[inst.host].push_back(&inst);
  int same_host_pairs = 0;
  for (auto& [host, vms] : by_host) {
    if (vms.size() == 2) {
      ++same_host_pairs;
      EXPECT_EQ(CloudSimulator::IpDistance(vms[0]->internal_ip,
                                           vms[1]->internal_ip),
                2);
    }
  }
  EXPECT_GT(same_host_pairs, 0);
}

TEST(CloudTest, IpToStringFormat) {
  EXPECT_EQ(IpToString((10u << 24) | (16u << 16) | (5u << 8) | 7u), "10.16.5.7");
}

TEST(CloudTest, DeterministicAcrossIdenticalSeeds) {
  CloudSimulator c1(AmazonEc2Profile(), 99), c2(AmazonEc2Profile(), 99);
  auto a1 = c1.Allocate(30), a2 = c2.Allocate(30);
  ASSERT_TRUE(a1.ok() && a2.ok());
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ((*a1)[i].host, (*a2)[i].host);
    EXPECT_EQ((*a1)[i].internal_ip, (*a2)[i].internal_ip);
  }
  EXPECT_DOUBLE_EQ(c1.ExpectedRtt((*a1)[0], (*a1)[1]),
                   c2.ExpectedRtt((*a2)[0], (*a2)[1]));
}

}  // namespace
}  // namespace cloudia::net
