// Golden regression: every deterministic registered solver must return
// exactly these costs on fixed-seed instances. The values were recorded from
// the nested-vector CostMatrix implementation immediately before the flat
// row-major migration, so bitwise equality here proves the migration (and
// the incremental delta evaluation inside local search) changed no result.
//
// R2 and the portfolio are deliberately absent: both run until a wall-clock
// deadline, so their trajectories are machine-dependent by design. The same
// filter drops MIP cases that exhaust the budget instead of proving
// optimality (mesh3x4/tree3x2): only runs that terminate on their own are
// reproducible.
#include <gtest/gtest.h>

#include <string>

#include "deploy/solve.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

struct GoldenCase {
  const char* fixture;
  const char* method;
  double cost;
};

// Recorded 2026-07 from the pre-migration evaluator (seed state at commit
// "Race registered solvers concurrently..."); %.17g round-trips doubles.
constexpr GoldenCase kGolden[] = {
    {"mesh3x4-ll", "g1", 1.2673762788870306},
    {"mesh3x4-ll", "g2", 1.1860050071579844},
    {"mesh3x4-ll", "r1", 1.1696751548310433},
    {"mesh3x4-ll", "cp", 0.77676741626981083},
    {"mesh3x4-ll", "local", 0.64643780479241519},
    {"tree3x2-lp", "g1", 1.3711792659825517},
    {"tree3x2-lp", "g2", 1.3711792659825517},
    {"tree3x2-lp", "r1", 1.5873182779479917},
    {"tree3x2-lp", "local", 0.80656054056313198},
    {"bip2x4-ll", "g1", 1.3435908923006501},
    {"bip2x4-ll", "g2", 1.2673762788870306},
    {"bip2x4-ll", "r1", 1.1232986803465945},
    {"bip2x4-ll", "cp", 1.1540856223671832},
    {"bip2x4-ll", "mip", 1.1770176051835348},
    {"bip2x4-ll", "local", 1.1232986803465945},
};

struct Fixture {
  graph::CommGraph graph;
  int m;
  Objective objective;
};

Fixture MakeFixture(const std::string& name) {
  if (name == "mesh3x4-ll") {
    return {graph::Mesh2D(3, 4), 14, Objective::kLongestLink};
  }
  if (name == "tree3x2-lp") {
    return {graph::AggregationTree(3, 3), 15, Objective::kLongestPath};
  }
  CLOUDIA_CHECK(name == "bip2x4-ll");
  return {graph::Bipartite(2, 4), 8, Objective::kLongestLink};
}

TEST(SolverGoldenTest, DeterministicSolversAreBitIdenticalToPreMigration) {
  for (const GoldenCase& c : kGolden) {
    Fixture fx = MakeFixture(c.fixture);
    Rng rng(42);
    CostMatrix costs = RandomCosts(fx.m, rng);

    NdpSolveOptions opts;
    opts.objective = fx.objective;
    opts.seed = 7;
    opts.time_budget_s = 60.0;
    opts.cost_clusters = 4;
    opts.r1_samples = 200;
    SolveContext context(Deadline::After(60.0));
    auto r = SolveNodeDeploymentByName(fx.graph, costs, c.method, opts,
                                       context);
    ASSERT_TRUE(r.ok()) << c.fixture << "/" << c.method << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->cost, c.cost)
        << c.fixture << "/" << c.method
        << ": cost drifted from the pre-migration recording";
  }
}

}  // namespace
}  // namespace cloudia::deploy
