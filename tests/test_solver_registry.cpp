#include <gtest/gtest.h>

#include <memory>

#include "deploy/solver_registry.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

TEST(SolverRegistryTest, GlobalHasAllBuiltinMethods) {
  auto names = SolverRegistry::Global().Names();
  for (const char* expected :
       {"cp", "g1", "g2", "hier", "local", "mip", "portfolio", "r1", "r2"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(SolverRegistryTest, LookupByNameIsCaseInsensitiveAndCoversDisplayNames) {
  SolverRegistry& registry = SolverRegistry::Global();
  const NdpSolver* cp = registry.Find("cp");
  ASSERT_NE(cp, nullptr);
  EXPECT_STREQ(cp->name(), "cp");
  EXPECT_EQ(registry.Find("CP"), cp);

  const NdpSolver* local = registry.Find("local");
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(registry.Find("LocalSearch"), local);
  EXPECT_STREQ(local->display_name(), "LocalSearch");
}

TEST(SolverRegistryTest, UnknownSolverIsACleanErrorNotACrash) {
  auto missing = SolverRegistry::Global().Require("simulated-annealing");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The error names the available solvers so a CLI typo is self-explaining.
  EXPECT_NE(missing.status().message().find("cp"), std::string::npos);
  EXPECT_EQ(SolverRegistry::Global().Find("no-such-solver"), nullptr);
}

TEST(SolverRegistryTest, UnsupportedObjectiveIsRejected) {
  const NdpSolver* cp = SolverRegistry::Global().Find("cp");
  ASSERT_NE(cp, nullptr);
  EXPECT_TRUE(cp->Supports(Objective::kLongestLink));
  EXPECT_FALSE(cp->Supports(Objective::kLongestPath));

  // The facade turns the Supports() refusal into InvalidArgument.
  Rng master(3);
  graph::CommGraph tree = graph::AggregationTree(2, 3);
  CostMatrix costs = RandomCosts(9, master);
  NdpSolveOptions opts;
  opts.method = Method::kCp;
  opts.objective = Objective::kLongestPath;
  auto r = SolveNodeDeployment(tree, costs, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, DuplicateAndNullRegistrationsFail) {
  SolverRegistry registry;
  RegisterBuiltinSolvers(registry);
  EXPECT_FALSE(registry.Register(nullptr).ok());

  class FakeCp : public NdpSolver {
   public:
    const char* name() const override { return "CP"; }  // collides with "cp"
    bool Supports(Objective) const override { return true; }
    Result<NdpSolveResult> Solve(const NdpProblem&, const NdpSolveOptions&,
                                 SolveContext&) const override {
      return Status::Unimplemented("fake");
    }
  };
  EXPECT_FALSE(registry.Register(std::make_unique<FakeCp>()).ok());
  // Idempotent builtin registration: no duplicates appear.
  size_t before = registry.Names().size();
  RegisterBuiltinSolvers(registry);
  EXPECT_EQ(registry.Names().size(), before);
}

TEST(SolverRegistryTest, CustomSolverBecomesDiscoverable) {
  class ConstantSolver : public NdpSolver {
   public:
    const char* name() const override { return "constant"; }
    bool Supports(Objective) const override { return true; }
    Result<NdpSolveResult> Solve(const NdpProblem& problem,
                                 const NdpSolveOptions&,
                                 SolveContext& context) const override {
      NdpSolveResult r;
      const int n = problem.graph->num_nodes();
      for (int i = 0; i < n; ++i) r.deployment.push_back(i);
      r.cost = 0.0;
      r.trace.push_back(context.ReportIncumbent(r.cost, r.deployment));
      return r;
    }
  };
  SolverRegistry registry;
  RegisterBuiltinSolvers(registry);
  ASSERT_TRUE(registry.Register(std::make_unique<ConstantSolver>()).ok());
  auto found = registry.Require("constant");
  ASSERT_TRUE(found.ok());
  EXPECT_STREQ((*found)->name(), "constant");
}

// The CLI's --portfolio list goes through ValidatePortfolioMembers: typos,
// duplicates, and self-references must come back as clean InvalidArgument /
// NotFound errors (never a crash or CHECK) before any thread is spawned.
TEST(SolverRegistryTest, ValidatePortfolioMembersCanonicalizesKnownNames) {
  auto ok = ValidatePortfolioMembers(SolverRegistry::Global(),
                                     {"CP", "LocalSearch", "r2"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, (std::vector<std::string>{"cp", "local", "r2"}));
  // Empty means "the default set" and is valid.
  auto empty = ValidatePortfolioMembers(SolverRegistry::Global(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(SolverRegistryTest, ValidatePortfolioMembersAcceptsHier) {
  // The hierarchical solver is a legal portfolio member (it is not the
  // portfolio itself, and at small n it degrades to a flat solve).
  auto ok =
      ValidatePortfolioMembers(SolverRegistry::Global(), {"Hier", "local"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, (std::vector<std::string>{"hier", "local"}));
}

TEST(SolverRegistryTest, ValidatePortfolioMembersRejectsUnknownNames) {
  auto unknown = ValidatePortfolioMembers(SolverRegistry::Global(),
                                          {"cp", "tabu-search"});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("tabu-search"),
            std::string::npos);
}

TEST(SolverRegistryTest, ValidatePortfolioMembersRejectsDuplicates) {
  // Spelled differently, same solver: still a duplicate.
  auto dup = ValidatePortfolioMembers(SolverRegistry::Global(),
                                      {"local", "cp", "LocalSearch"});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
}

TEST(SolverRegistryTest, ValidatePortfolioMembersRejectsSelfReference) {
  auto self = ValidatePortfolioMembers(SolverRegistry::Global(),
                                       {"cp", "portfolio"});
  ASSERT_FALSE(self.ok());
  EXPECT_EQ(self.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, PortfolioSolveRejectsDuplicateMembersCleanly) {
  Rng master(17);
  graph::CommGraph mesh = graph::Mesh2D(2, 3);
  CostMatrix costs = RandomCosts(8, master);
  NdpSolveOptions opts;
  opts.portfolio_members = {"local", "local"};
  opts.time_budget_s = 1.0;
  SolveContext context(Deadline::After(1.0));
  auto r = SolveNodeDeploymentByName(mesh, costs, "portfolio", opts, context);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, ParseMethodRoundTripsWithBothSpellings) {
  for (Method method :
       {Method::kGreedyG1, Method::kGreedyG2, Method::kRandomR1,
        Method::kRandomR2, Method::kCp, Method::kMip, Method::kLocalSearch,
        Method::kPortfolio, Method::kHier}) {
    auto from_key = ParseMethod(MethodKey(method));
    ASSERT_TRUE(from_key.ok()) << MethodKey(method);
    EXPECT_EQ(*from_key, method);
    auto from_display = ParseMethod(MethodName(method));
    ASSERT_TRUE(from_display.ok()) << MethodName(method);
    EXPECT_EQ(*from_display, method);
  }
  EXPECT_FALSE(ParseMethod("annealing").ok());
  EXPECT_EQ(ParseMethod("annealing").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverRegistryTest, ParseObjectiveRoundTrips) {
  for (Objective objective :
       {Objective::kLongestLink, Objective::kLongestPath}) {
    auto parsed = ParseObjective(ObjectiveName(objective));
    ASSERT_TRUE(parsed.ok()) << ObjectiveName(objective);
    EXPECT_EQ(*parsed, objective);
  }
  EXPECT_EQ(*ParseObjective("longest-link"), Objective::kLongestLink);
  EXPECT_EQ(*ParseObjective("longest-path"), Objective::kLongestPath);
  EXPECT_FALSE(ParseObjective("shortest-link").ok());
}

TEST(SolverRegistryTest, EveryBuiltinSolvesAProblemThroughTheInterface) {
  Rng master(7);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(11, master);
  NdpProblem problem;
  problem.graph = &mesh;
  problem.costs = &costs;
  problem.objective = Objective::kLongestLink;

  for (const std::string& name : SolverRegistry::Global().Names()) {
    const NdpSolver* solver = SolverRegistry::Global().Find(name);
    ASSERT_NE(solver, nullptr) << name;
    NdpSolveOptions opts;
    opts.r1_samples = 50;
    opts.threads = 2;
    opts.seed = 5;
    SolveContext context(Deadline::After(0.2));
    auto r = solver->Solve(problem, opts, context);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    EXPECT_TRUE(ValidateDeployment(mesh, r->deployment, costs,
                                   Objective::kLongestLink)
                    .ok())
        << name;
  }
}

}  // namespace
}  // namespace cloudia::deploy
