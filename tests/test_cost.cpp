#include <gtest/gtest.h>

#include "deploy/cost.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

using graph::CommGraph;
using graph::Edge;

CommGraph Make(int n, std::vector<Edge> edges) {
  auto r = CommGraph::Create(n, std::move(edges));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

CostMatrix SmallCosts() {
  // 4 instances; asymmetric.
  return {{0.0, 1.0, 2.0, 3.0},
          {1.5, 0.0, 4.0, 5.0},
          {2.5, 4.5, 0.0, 6.0},
          {3.5, 5.5, 6.5, 0.0}};
}

TEST(CostTest, InjectivityCheck) {
  EXPECT_TRUE(IsInjective({0, 2, 1}, 3));
  EXPECT_FALSE(IsInjective({0, 0}, 3));
  EXPECT_FALSE(IsInjective({0, 3}, 3));
  EXPECT_FALSE(IsInjective({-1}, 3));
  EXPECT_TRUE(IsInjective({}, 0));
}

TEST(CostTest, LongestLinkPicksWorstDirectedEdge) {
  CommGraph g = Make(3, {{0, 1}, {1, 2}});
  // D: 0->0, 1->1, 2->2. Links used: (0,1) cost 1.0 and (1,2) cost 4.0.
  EXPECT_DOUBLE_EQ(LongestLinkCost(g, {0, 1, 2}, SmallCosts()), 4.0);
  // Reversed mapping: links (2,1) cost 4.5 and (1,0) cost 1.5.
  EXPECT_DOUBLE_EQ(LongestLinkCost(g, {2, 1, 0}, SmallCosts()), 4.5);
}

TEST(CostTest, LongestLinkOfEdgelessGraphIsZero) {
  CommGraph g = Make(3, {});
  EXPECT_DOUBLE_EQ(LongestLinkCost(g, {0, 1, 2}, SmallCosts()), 0.0);
}

TEST(CostTest, LongestPathSumsAlongPath) {
  // Chain 0 -> 1 -> 2 deployed to instances 0, 1, 2:
  // path cost = c[0][1] + c[1][2] = 1 + 4 = 5.
  CommGraph g = Make(3, {{0, 1}, {1, 2}});
  auto c = LongestPathCost(g, {0, 1, 2}, SmallCosts());
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 5.0);
}

TEST(CostTest, LongestPathTakesMaxOverPaths) {
  // Diamond 0 -> {1, 2} -> 3 with instances identity:
  // path via 1: c[0][1] + c[1][3] = 1 + 5 = 6
  // path via 2: c[0][2] + c[2][3] = 2 + 6 = 8.
  CommGraph g = Make(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto c = LongestPathCost(g, {0, 1, 2, 3}, SmallCosts());
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 8.0);
}

TEST(CostTest, LongestPathRejectsCycle) {
  CommGraph g = Make(2, {{0, 1}, {1, 0}});
  EXPECT_FALSE(LongestPathCost(g, {0, 1}, SmallCosts()).ok());
}

TEST(CostTest, EvaluatorMatchesOneShotFunctions) {
  Rng rng(3);
  CommGraph g = graph::RandomDag(6, 0.4, rng);
  CostMatrix costs = RandomCosts(8, rng);
  auto ll = CostEvaluator::Create(&g, &costs, Objective::kLongestLink);
  auto lp = CostEvaluator::Create(&g, &costs, Objective::kLongestPath);
  ASSERT_TRUE(ll.ok() && lp.ok());
  for (int trial = 0; trial < 20; ++trial) {
    Deployment d = rng.SampleWithoutReplacement(8, 6);
    EXPECT_DOUBLE_EQ(ll->Cost(d), LongestLinkCost(g, d, costs));
    EXPECT_DOUBLE_EQ(lp->Cost(d), *LongestPathCost(g, d, costs));
  }
}

TEST(CostTest, ValidationCatchesProblems) {
  CommGraph g = Make(3, {{0, 1}, {1, 2}});
  CostMatrix c = SmallCosts();
  EXPECT_TRUE(ValidateDeployment(g, {0, 1, 2}, c, Objective::kLongestLink).ok());
  EXPECT_FALSE(ValidateDeployment(g, {0, 1}, c, Objective::kLongestLink).ok());
  EXPECT_FALSE(
      ValidateDeployment(g, {0, 1, 1}, c, Objective::kLongestLink).ok());
  EXPECT_FALSE(
      ValidateDeployment(g, {0, 1, 9}, c, Objective::kLongestLink).ok());
  // Ragged input cannot even construct a CostMatrix.
  EXPECT_FALSE(CostMatrix::FromRows({{0.0, 1.0}, {1.0}}).ok());
  CommGraph cyclic = Make(3, {{0, 1}, {1, 0}});
  EXPECT_FALSE(
      ValidateDeployment(cyclic, {0, 1, 2}, c, Objective::kLongestPath).ok());
}

TEST(CostTest, EvaluatorRejectsTooManyNodes) {
  CommGraph g = Make(5, {});
  CostMatrix c = SmallCosts();  // only 4 instances
  EXPECT_FALSE(CostEvaluator::Create(&g, &c, Objective::kLongestLink).ok());
}

TEST(CostTest, ClusterCostMatrixReducesDistinctValues) {
  Rng rng(7);
  CostMatrix c = RandomCosts(12, rng);
  auto clustered = ClusterCostMatrix(c, 5);
  ASSERT_TRUE(clustered.ok());
  std::set<double> distinct;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i != j) distinct.insert(clustered->At(i, j));
    }
  }
  EXPECT_LE(distinct.size(), 5u);
  // Diagonal untouched.
  for (int i = 0; i < 12; ++i) EXPECT_EQ(clustered->At(i, i), 0.0);
}

TEST(CostTest, ClusterWithKAboveDistinctValuesIsIdentity) {
  // 4 instances, only 3 distinct off-diagonal values: k >= 3 must return the
  // matrix *unchanged* -- not snapped to the 0.01 ms rounding grid, not
  // padded with fabricated levels.
  CostMatrix c{{0.0, 0.2041, 0.307, 0.307},
               {0.2041, 0.0, 0.307, 0.4},
               {0.307, 0.307, 0.0, 0.2041},
               {0.4, 0.4, 0.2041, 0.0}};
  for (int k : {3, 4, 10, 1000}) {
    auto clustered = ClusterCostMatrix(c, k);
    ASSERT_TRUE(clustered.ok()) << "k=" << k;
    EXPECT_EQ(*clustered, c) << "k=" << k;
  }
  // k below the distinct count still clusters.
  auto merged = ClusterCostMatrix(c, 2);
  ASSERT_TRUE(merged.ok());
  EXPECT_NE(*merged, c);
}

TEST(CostTest, ClusterPreservesUnmeasuredSentinelEntries) {
  Rng rng(11);
  CostMatrix c = RandomCosts(8, rng);  // values in ~[0.2, 1.4]
  c.At(2, 5) = kUnmeasuredCostMs;
  c.At(6, 1) = kUnmeasuredCostMs;
  auto clustered = ClusterCostMatrix(c, 3);
  ASSERT_TRUE(clustered.ok());
  // Sentinels survive verbatim...
  EXPECT_EQ(clustered->At(2, 5), kUnmeasuredCostMs);
  EXPECT_EQ(clustered->At(6, 1), kUnmeasuredCostMs);
  // ...and do not drag any cluster mean above the measured range: every
  // other entry stays near [0.2, 1.4] instead of drifting toward 1e6.
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (i == j || (i == 2 && j == 5) || (i == 6 && j == 1)) continue;
      EXPECT_LT(clustered->At(i, j), 2.0) << i << "," << j;
    }
  }
}

TEST(CostTest, ClusterAllSentinelMatrixIsIdentity) {
  CostMatrix c(3, kUnmeasuredCostMs);
  for (int i = 0; i < 3; ++i) c.At(i, i) = 0.0;
  auto clustered = ClusterCostMatrix(c, 2);
  ASSERT_TRUE(clustered.ok());
  EXPECT_EQ(*clustered, c);
}

TEST(CostTest, ClusterZeroIsIdentity) {
  Rng rng(9);
  CostMatrix c = RandomCosts(6, rng);
  auto same = ClusterCostMatrix(c, 0);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, c);
}

TEST(CostTest, ObjectiveNames) {
  EXPECT_STREQ(ObjectiveName(Objective::kLongestLink), "LongestLink");
  EXPECT_STREQ(ObjectiveName(Objective::kLongestPath), "LongestPath");
}

}  // namespace
}  // namespace cloudia::deploy
