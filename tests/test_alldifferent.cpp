#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.h"
#include "solver/cp/alldifferent.h"

namespace cloudia::cp {
namespace {

// Reference implementation of GAC semantics: value v stays in dom(x) iff a
// perfect matching of all variables exists with x = v (checked by Kuhn's
// algorithm from scratch).
bool MatchingExistsWithForced(const std::vector<BitSet>& domains, int fx,
                              int fv, int num_values) {
  int n = static_cast<int>(domains.size());
  std::vector<int> value_match(static_cast<size_t>(num_values), -1);
  std::vector<bool> visited;
  std::function<bool(int)> augment = [&](int x) -> bool {
    const BitSet& dom = domains[static_cast<size_t>(x)];
    for (int v = dom.First(); v >= 0; v = dom.Next(v)) {
      if (x == fx && v != fv) continue;
      if (x != fx && v == fv) continue;
      if (visited[static_cast<size_t>(v)]) continue;
      visited[static_cast<size_t>(v)] = true;
      int owner = value_match[static_cast<size_t>(v)];
      if (owner == -1 || augment(owner)) {
        value_match[static_cast<size_t>(v)] = x;
        return true;
      }
    }
    return false;
  };
  for (int x = 0; x < n; ++x) {
    visited.assign(static_cast<size_t>(num_values), false);
    if (!augment(x)) return false;
  }
  return true;
}

std::vector<BitSet> MakeDomains(int num_values,
                                const std::vector<std::vector<int>>& values) {
  std::vector<BitSet> domains;
  for (const auto& vals : values) {
    BitSet d(num_values);
    for (int v : vals) d.Insert(v);
    domains.push_back(d);
  }
  return domains;
}

TEST(AllDifferentTest, ClassicReginExample) {
  // x0 in {0,1}, x1 in {0,1}, x2 in {0,1,2}: x2 cannot take 0 or 1.
  auto domains = MakeDomains(3, {{0, 1}, {0, 1}, {0, 1, 2}});
  AllDifferent ad(3, 3);
  std::vector<int> touched;
  ASSERT_TRUE(ad.Propagate(domains, &touched));
  EXPECT_EQ(domains[2].Count(), 1);
  EXPECT_EQ(domains[2].First(), 2);
  EXPECT_EQ(domains[0].Count(), 2);  // x0, x1 keep both values
  EXPECT_FALSE(touched.empty());
}

TEST(AllDifferentTest, PigeonholeFails) {
  auto domains = MakeDomains(2, {{0, 1}, {0, 1}, {0, 1}});
  AllDifferent ad(3, 2);
  EXPECT_FALSE(ad.Propagate(domains, nullptr));
}

TEST(AllDifferentTest, EmptyDomainFails) {
  auto domains = MakeDomains(3, {{0}, {}, {1, 2}});
  AllDifferent ad(3, 3);
  EXPECT_FALSE(ad.Propagate(domains, nullptr));
}

TEST(AllDifferentTest, SingletonChainPropagates) {
  // x0={0} forces x1 to 1, which forces x2 to 2.
  auto domains = MakeDomains(3, {{0}, {0, 1}, {1, 2}});
  AllDifferent ad(3, 3);
  ASSERT_TRUE(ad.Propagate(domains, nullptr));
  EXPECT_EQ(domains[1].First(), 1);
  EXPECT_EQ(domains[1].Count(), 1);
  EXPECT_EQ(domains[2].First(), 2);
}

TEST(AllDifferentTest, FreeValuesKeepDomainsWide) {
  // More values than vars: nothing should be pruned when all domains full.
  auto domains = MakeDomains(5, {{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}});
  AllDifferent ad(2, 5);
  std::vector<int> touched;
  ASSERT_TRUE(ad.Propagate(domains, &touched));
  EXPECT_EQ(domains[0].Count(), 5);
  EXPECT_EQ(domains[1].Count(), 5);
  EXPECT_TRUE(touched.empty());
}

TEST(AllDifferentTest, MatchingIsConsistentAfterPropagate) {
  auto domains = MakeDomains(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  AllDifferent ad(4, 4);
  ASSERT_TRUE(ad.Propagate(domains, nullptr));
  const auto& m = ad.matching();
  std::set<int> used;
  for (int x = 0; x < 4; ++x) {
    EXPECT_TRUE(domains[static_cast<size_t>(x)].Contains(m[static_cast<size_t>(x)]));
    EXPECT_TRUE(used.insert(m[static_cast<size_t>(x)]).second);
  }
}

TEST(AllDifferentTest, GacMatchesBruteForceOnRandomInstances) {
  Rng rng(123);
  for (int trial = 0; trial < 120; ++trial) {
    int n = 2 + static_cast<int>(rng.Below(5));       // 2..6 vars
    int m = n + static_cast<int>(rng.Below(3));       // n..n+2 values
    std::vector<std::vector<int>> vals(static_cast<size_t>(n));
    for (auto& dv : vals) {
      for (int v = 0; v < m; ++v) {
        if (rng.Bernoulli(0.6)) dv.push_back(v);
      }
      if (dv.empty()) dv.push_back(static_cast<int>(rng.Below(
          static_cast<uint64_t>(m))));
    }
    auto domains = MakeDomains(m, vals);
    auto reference = domains;
    AllDifferent ad(n, m);
    bool feasible = ad.Propagate(domains, nullptr);
    bool ref_feasible = MatchingExistsWithForced(reference, -1, -1, m);
    ASSERT_EQ(feasible, ref_feasible) << "trial " << trial;
    if (!feasible) continue;
    for (int x = 0; x < n; ++x) {
      for (int v = 0; v < m; ++v) {
        bool kept = domains[static_cast<size_t>(x)].Contains(v);
        bool should_keep =
            reference[static_cast<size_t>(x)].Contains(v) &&
            MatchingExistsWithForced(reference, x, v, m);
        EXPECT_EQ(kept, should_keep)
            << "trial " << trial << " var " << x << " val " << v;
      }
    }
  }
}

TEST(AllDifferentTest, RepeatedCallsAreIdempotent) {
  auto domains = MakeDomains(4, {{0, 1}, {0, 1}, {0, 1, 2, 3}, {2, 3}});
  AllDifferent ad(4, 4);
  ASSERT_TRUE(ad.Propagate(domains, nullptr));
  auto snapshot = domains;
  std::vector<int> touched;
  ASSERT_TRUE(ad.Propagate(domains, &touched));
  EXPECT_TRUE(touched.empty());
  for (size_t i = 0; i < domains.size(); ++i) EXPECT_EQ(domains[i], snapshot[i]);
}

}  // namespace
}  // namespace cloudia::cp
