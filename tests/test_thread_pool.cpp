#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cloudia {
namespace {

TEST(ThreadPoolTest, RunsTasksAndReturnsTheirValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ResultIsIndependentOfExecutionOrder) {
  // Whatever order the workers pick tasks in, each future maps to its own
  // task and an order-insensitive aggregate comes out exact.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::atomic<long long> sum{0};
    std::vector<std::future<int>> futures;
    for (int i = 1; i <= 200; ++i) {
      futures.push_back(pool.Submit([i, &sum] {
        sum.fetch_add(i, std::memory_order_relaxed);
        return i;
      }));
    }
    std::set<int> seen;
    for (auto& f : futures) seen.insert(f.get());
    EXPECT_EQ(seen.size(), 200u) << threads << " threads";
    EXPECT_EQ(sum.load(), 200ll * 201 / 2) << threads << " threads";
  }
}

TEST(ThreadPoolTest, SingleWorkerExecutesInSubmissionOrder) {
  // The portfolio's --threads=1 determinism rests on this FIFO guarantee.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughTheFuture) {
  ThreadPool pool(2);
  auto boom = pool.Submit([]() -> int {
    throw std::runtime_error("task exploded");
  });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The worker that ran the throwing task survives and keeps serving.
  auto after = pool.Submit([] { return 7; });
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsEveryQueuedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor shuts down while most of the 64 tasks are still queued.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::thread::id caller = std::this_thread::get_id();
  auto future = pool.Submit([caller] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return 11;
  });
  EXPECT_EQ(future.get(), 11);
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolStressTest, ShutdownWhileProducersAreStillSubmitting) {
  // Producers keep submitting while the main thread tears the pool down;
  // every task must still run exactly once (queued ones are drained, late
  // ones run inline on their producer) and nothing may deadlock.
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 250;
  std::atomic<int> ran{0};
  ThreadPool pool(3);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures.push_back(pool.Submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool.Shutdown();  // races the producers on purpose
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
}

TEST(ParallelIndexedReduceTest, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int result = ParallelIndexedReduce<int>(
      &pool, 0, 4, 42,
      [](int, int64_t, int64_t) { return 1; },
      [](int acc, int part) { return acc + part; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelIndexedReduceTest, NullPoolRunsInlineOverWholeRange) {
  std::vector<std::pair<int64_t, int64_t>> calls;
  const int64_t sum = ParallelIndexedReduce<int64_t>(
      nullptr, 10, 4, int64_t{0},
      [&calls](int chunk, int64_t begin, int64_t end) {
        EXPECT_EQ(chunk, 0);
        calls.emplace_back(begin, end);
        int64_t s = 0;
        for (int64_t i = begin; i < end; ++i) s += i;
        return s;
      },
      [](int64_t acc, int64_t part) { return acc + part; });
  EXPECT_EQ(sum, 45);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], std::make_pair(int64_t{0}, int64_t{10}));
}

TEST(ParallelIndexedReduceTest, ChunksPartitionTheRangeInOrder) {
  // A non-commutative fold (string concatenation of per-chunk ranges)
  // observes the ascending chunk order regardless of completion order.
  ThreadPool pool(4);
  const std::string folded = ParallelIndexedReduce<std::string>(
      &pool, 10, 3, std::string(),
      [](int chunk, int64_t begin, int64_t end) {
        return "[" + std::to_string(chunk) + ":" + std::to_string(begin) +
               "," + std::to_string(end) + ")";
      },
      [](std::string acc, std::string part) { return acc + part; });
  EXPECT_EQ(folded, "[0:0,4)[1:4,7)[2:7,10)");
}

TEST(ParallelIndexedReduceTest, ResultIndependentOfPoolSize) {
  // max over a pseudo-random sequence: same chunking, same fold, any pool.
  auto value_at = [](int64_t i) {
    return static_cast<double>((i * 2654435761u) % 10007);
  };
  auto map = [&value_at](int, int64_t begin, int64_t end) {
    double best = -1;
    for (int64_t i = begin; i < end; ++i) best = std::max(best, value_at(i));
    return best;
  };
  auto reduce = [](double acc, double part) { return std::max(acc, part); };
  ThreadPool one(1);
  const double expect =
      ParallelIndexedReduce<double>(&one, 1000, 7, -1.0, map, reduce);
  for (int workers : {2, 3, 8}) {
    ThreadPool pool(workers);
    EXPECT_EQ(ParallelIndexedReduce<double>(&pool, 1000, 7, -1.0, map, reduce),
              expect);
  }
}

TEST(ParallelIndexedReduceTest, MoreChunksThanItemsClampsToCount) {
  ThreadPool pool(4);
  std::atomic<int> chunks_seen{0};
  const int64_t sum = ParallelIndexedReduce<int64_t>(
      &pool, 3, 16, int64_t{0},
      [&chunks_seen](int, int64_t begin, int64_t end) {
        chunks_seen.fetch_add(1);
        EXPECT_EQ(end - begin, 1);  // one item per chunk, never zero-width
        return begin;
      },
      [](int64_t acc, int64_t part) { return acc + part; });
  EXPECT_EQ(sum, 3);  // 0 + 1 + 2
  EXPECT_EQ(chunks_seen.load(), 3);
}

}  // namespace
}  // namespace cloudia
