// Shared helpers for the deployment-solver tests.
#ifndef CLOUDIA_TESTS_DEPLOY_TEST_UTIL_H_
#define CLOUDIA_TESTS_DEPLOY_TEST_UTIL_H_

#include <functional>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "deploy/cost.h"

namespace cloudia::deploy {

/// Random symmetric-ish cost matrix in [lo, hi] ms with zero diagonal.
inline CostMatrix RandomCosts(int m, Rng& rng, double lo = 0.2,
                              double hi = 1.4, double asymmetry = 0.02) {
  CostMatrix c(m);
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      double base = rng.Uniform(lo, hi);
      c.At(i, j) = base + rng.Uniform(-asymmetry, asymmetry);
      c.At(j, i) = base + rng.Uniform(-asymmetry, asymmetry);
    }
  }
  return c;
}

/// Exhaustive optimum over all injections (use only for tiny instances).
inline double BruteForceOptimum(const graph::CommGraph& graph,
                                const CostMatrix& costs, Objective objective) {
  auto eval = CostEvaluator::Create(&graph, &costs, objective);
  CLOUDIA_CHECK(eval.ok());
  int n = graph.num_nodes();
  int m = costs.size();
  Deployment d(static_cast<size_t>(n), -1);
  std::vector<bool> used(static_cast<size_t>(m), false);
  double best = std::numeric_limits<double>::infinity();
  std::function<void(int)> rec = [&](int node) {
    if (node == n) {
      best = std::min(best, eval->Cost(d));
      return;
    }
    for (int j = 0; j < m; ++j) {
      if (used[static_cast<size_t>(j)]) continue;
      used[static_cast<size_t>(j)] = true;
      d[static_cast<size_t>(node)] = j;
      rec(node + 1);
      used[static_cast<size_t>(j)] = false;
    }
  };
  rec(0);
  return best;
}

}  // namespace cloudia::deploy

#endif  // CLOUDIA_TESTS_DEPLOY_TEST_UTIL_H_
