#include <gtest/gtest.h>

#include <functional>

#include "deploy/weighted.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

// Exhaustive weighted optimum for tiny instances.
double BruteForceWeighted(const WeightedProblem& p, Objective objective) {
  int n = p.graph->num_nodes();
  int m = static_cast<int>(p.costs->size());
  Deployment d(static_cast<size_t>(n), -1);
  std::vector<bool> used(static_cast<size_t>(m), false);
  double best = std::numeric_limits<double>::infinity();
  std::function<void(int)> rec = [&](int node) {
    if (node == n) {
      auto c = WeightedCost(p, d, objective);
      CLOUDIA_CHECK(c.ok());
      best = std::min(best, *c);
      return;
    }
    for (int j = 0; j < m; ++j) {
      if (used[static_cast<size_t>(j)]) continue;
      used[static_cast<size_t>(j)] = true;
      d[static_cast<size_t>(node)] = j;
      rec(node + 1);
      used[static_cast<size_t>(j)] = false;
    }
  };
  rec(0);
  return best;
}

WeightedProblem MakeProblem(const graph::CommGraph* g, const CostMatrix* c,
                            std::vector<double> weights) {
  WeightedProblem p;
  p.graph = g;
  p.costs = c;
  p.edge_weights = std::move(weights);
  return p;
}

TEST(WeightedTest, ValidationCatchesProblems) {
  Rng rng(1);
  graph::CommGraph g = graph::Ring(4);
  CostMatrix c = RandomCosts(6, rng);
  auto p = MakeProblem(&g, &c, {1, 1, 1, 1});
  EXPECT_TRUE(ValidateWeightedProblem(p, Objective::kLongestLink).ok());
  // Cyclic graph rejected for longest path.
  EXPECT_FALSE(ValidateWeightedProblem(p, Objective::kLongestPath).ok());
  // Wrong weight count.
  auto p2 = MakeProblem(&g, &c, {1, 1});
  EXPECT_FALSE(ValidateWeightedProblem(p2, Objective::kLongestLink).ok());
  // Non-positive weight.
  auto p3 = MakeProblem(&g, &c, {1, 0, 1, 1});
  EXPECT_FALSE(ValidateWeightedProblem(p3, Objective::kLongestLink).ok());
}

TEST(WeightedTest, UnitWeightsMatchUnweightedCosts) {
  Rng rng(2);
  graph::CommGraph g = graph::Mesh2D(2, 3);
  CostMatrix c = RandomCosts(8, rng);
  auto p = MakeProblem(&g, &c,
                       std::vector<double>(static_cast<size_t>(g.num_edges()), 1.0));
  for (int t = 0; t < 10; ++t) {
    Deployment d = rng.SampleWithoutReplacement(8, 6);
    auto wc = WeightedCost(p, d, Objective::kLongestLink);
    ASSERT_TRUE(wc.ok());
    EXPECT_DOUBLE_EQ(*wc, LongestLinkCost(g, d, c));
  }
}

TEST(WeightedTest, WeightsScaleLinkCosts) {
  // Two-edge path; heavy weight on edge 0 dominates.
  auto g = graph::CommGraph::Create(3, {{0, 1}, {1, 2}});
  CostMatrix c(3, 1.0);
  for (int i = 0; i < 3; ++i) c.At(i, i) = 0;
  auto p = MakeProblem(&*g, &c, {10.0, 1.0});
  Deployment d = {0, 1, 2};
  auto ll = WeightedCost(p, d, Objective::kLongestLink);
  ASSERT_TRUE(ll.ok());
  EXPECT_DOUBLE_EQ(*ll, 10.0);
  auto lp = WeightedCost(p, d, Objective::kLongestPath);
  ASSERT_TRUE(lp.ok());
  EXPECT_DOUBLE_EQ(*lp, 11.0);
}

TEST(WeightedTest, RandomSearchRespectsWeights) {
  Rng rng(3);
  graph::CommGraph g = graph::Mesh2D(2, 2);
  CostMatrix c = RandomCosts(6, rng);
  std::vector<double> w(static_cast<size_t>(g.num_edges()), 1.0);
  w[0] = 25.0;
  auto p = MakeProblem(&g, &c, w);
  auto r = WeightedRandomSearch(p, Objective::kLongestLink, 500, 9);
  ASSERT_TRUE(r.ok());
  auto check = WeightedCost(p, r->deployment, Objective::kLongestLink);
  EXPECT_DOUBLE_EQ(*check, r->cost);
}

TEST(WeightedCpTest, OptimalOnTinyInstances) {
  Rng master(5);
  for (int trial = 0; trial < 8; ++trial) {
    graph::CommGraph g = graph::RandomSymmetric(5, 2.5, master);
    CostMatrix c = RandomCosts(7, master);
    std::vector<double> w;
    for (int e = 0; e < g.num_edges(); ++e) {
      w.push_back(master.Uniform(0.5, 3.0));
    }
    auto p = MakeProblem(&g, &c, w);
    WeightedCpOptions opts;
    opts.seed = master.Next();
    auto r = SolveWeightedLlndpCp(p, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->proven_optimal);
    EXPECT_NEAR(r->cost, BruteForceWeighted(p, Objective::kLongestLink), 1e-9)
        << "trial " << trial;
  }
}

TEST(WeightedCpTest, UnitWeightsMatchUnweightedOptimum) {
  Rng master(7);
  graph::CommGraph g = graph::Mesh2D(2, 3);
  CostMatrix c = RandomCosts(8, master);
  auto p = MakeProblem(&g, &c,
                       std::vector<double>(static_cast<size_t>(g.num_edges()), 1.0));
  WeightedCpOptions opts;
  opts.seed = 3;
  auto r = SolveWeightedLlndpCp(p, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->proven_optimal);
  EXPECT_NEAR(r->cost, BruteForceOptimum(g, c, Objective::kLongestLink), 1e-9);
}

TEST(WeightedCpTest, HeavyEdgeGetsTheBestLink) {
  // One heavy edge (w=100) and a light edge: optimal plan must place the
  // heavy edge on the cheapest instance link.
  auto g = graph::CommGraph::Create(3, {{0, 1}, {1, 2}});
  Rng rng(11);
  CostMatrix c = RandomCosts(6, rng);
  auto p = MakeProblem(&*g, &c, {100.0, 1.0});
  WeightedCpOptions opts;
  auto r = SolveWeightedLlndpCp(p, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->proven_optimal);
  // Find the global min-cost ordered pair.
  double min_cost = 1e18;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) min_cost = std::min(min_cost, c.At(i, j));
    }
  }
  double heavy_link = c.At(r->deployment[0], r->deployment[1]);
  EXPECT_DOUBLE_EQ(heavy_link, min_cost);
}

TEST(WeightedCpTest, TraceMonotoneAndDeadlineRespected) {
  Rng master(13);
  graph::CommGraph g = graph::Mesh2D(3, 3);
  CostMatrix c = RandomCosts(11, master);
  std::vector<double> w;
  for (int e = 0; e < g.num_edges(); ++e) w.push_back(master.Uniform(0.5, 2));
  auto p = MakeProblem(&g, &c, w);
  WeightedCpOptions opts;
  opts.deadline = Deadline::After(0);
  auto r = SolveWeightedLlndpCp(p, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->proven_optimal);  // no time to search
  for (size_t i = 1; i < r->trace.size(); ++i) {
    EXPECT_LT(r->trace[i].cost, r->trace[i - 1].cost);
  }
}

}  // namespace
}  // namespace cloudia::deploy
