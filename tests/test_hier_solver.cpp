// End-to-end contracts of the hierarchical solver: validity, bounded
// quality loss vs a flat solve, golden single-thread determinism, clean
// option errors, and a concurrent fan-out run for TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "deploy/cost.h"
#include "deploy/solve.h"
#include "deploy/solver_registry.h"
#include "graph/templates.h"
#include "hier/cost_source.h"
#include "hier/solver.h"

namespace cloudia::hier {
namespace {

deploy::CostMatrix RackCosts(int m, int rack_size, uint64_t seed = 21) {
  deploy::CostMatrix costs(m);
  Rng rng(seed);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      const bool same = i / rack_size == j / rack_size;
      costs.At(i, j) = (same ? 0.3 : 1.6) + rng.Uniform(0.0, 0.05);
    }
  }
  return costs;
}

bool IsInjective(const deploy::Deployment& d, int m) {
  std::vector<bool> used(static_cast<size_t>(m), false);
  for (int inst : d) {
    if (inst < 0 || inst >= m || used[static_cast<size_t>(inst)]) return false;
    used[static_cast<size_t>(inst)] = true;
  }
  return true;
}

// Forces the full decompose -> coarse -> shard -> polish pipeline on
// test-sized problems (the default fallback threshold would solve them
// flat).
HierOptions PipelineOptions() {
  HierOptions options;
  options.flat_fallback_instances = 16;
  return options;
}

TEST(HierSolverTest, FullPipelineProducesValidDeployment) {
  graph::CommGraph app = graph::Mesh2D(5, 8);
  deploy::CostMatrix costs = RackCosts(80, 16);
  MatrixCostSource source(&costs);
  deploy::SolveContext context(Deadline::Infinite());
  auto solved = SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                  PipelineOptions(), context);
  ASSERT_TRUE(solved.ok());
  EXPECT_FALSE(solved->stats.flat_fallback);
  EXPECT_GT(solved->stats.clusters, 1);
  EXPECT_GT(solved->stats.shards, 0);
  EXPECT_TRUE(IsInjective(solved->result.deployment, costs.size()));
  auto exact = EvaluateObjective(app, source, solved->result.deployment,
                                 deploy::Objective::kLongestLink);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(solved->result.cost, *exact);
}

TEST(HierSolverTest, SmallProblemsFallBackToAFlatSolve) {
  graph::CommGraph app = graph::Mesh2D(3, 3);
  deploy::CostMatrix costs = RackCosts(12, 6);
  MatrixCostSource source(&costs);
  deploy::SolveContext context(Deadline::Infinite());
  auto solved = SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                  HierOptions{}, context);
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(solved->stats.flat_fallback);
  EXPECT_TRUE(IsInjective(solved->result.deployment, costs.size()));
}

TEST(HierSolverTest, StaysWithinToleranceOfTheFlatIncumbent) {
  graph::CommGraph app = graph::Mesh2D(6, 8);
  deploy::CostMatrix costs = RackCosts(96, 24);
  MatrixCostSource source(&costs);

  deploy::NdpSolveOptions flat_opts;
  flat_opts.objective = deploy::Objective::kLongestLink;
  flat_opts.seed = 5;
  deploy::SolveContext flat_context(Deadline::After(5.0));
  auto flat = deploy::SolveNodeDeploymentByName(app, costs, "local", flat_opts,
                                                flat_context);
  ASSERT_TRUE(flat.ok());

  HierOptions options = PipelineOptions();
  options.seed = 5;
  deploy::SolveContext context(Deadline::Infinite());
  auto solved = SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                  options, context);
  ASSERT_TRUE(solved.ok());
  EXPECT_LE(solved->result.cost, flat->cost * 1.25)
      << "hier " << solved->result.cost << " vs flat " << flat->cost;
}

TEST(HierSolverTest, SingleThreadSolvesAreBitDeterministic) {
  graph::CommGraph app = graph::Mesh2D(4, 10);
  deploy::CostMatrix costs = RackCosts(80, 20);
  MatrixCostSource source(&costs);
  HierOptions options = PipelineOptions();
  options.threads = 1;
  options.seed = 9;

  deploy::SolveContext first_context(Deadline::Infinite());
  auto first = SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                 options, first_context);
  deploy::SolveContext second_context(Deadline::Infinite());
  auto second = SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                  options, second_context);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->result.deployment, second->result.deployment);
  EXPECT_EQ(first->result.cost, second->result.cost);  // bitwise, not approx
  EXPECT_EQ(first->stats.seams_polished, second->stats.seams_polished);
}

TEST(HierSolverTest, ConcurrentShardFanOutStaysValid) {
  // Exercises the ThreadPool fan-out path with real concurrency -- the
  // TSan preset runs this suite to certify the shard workers share nothing
  // but the (serialized) incumbent reports.
  graph::CommGraph app = graph::Mesh2D(6, 10);
  deploy::CostMatrix costs = RackCosts(120, 20);
  MatrixCostSource source(&costs);
  HierOptions options = PipelineOptions();
  options.threads = 4;
  deploy::SolveContext context(Deadline::Infinite());
  auto solved = SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                  options, context);
  ASSERT_TRUE(solved.ok());
  EXPECT_GT(solved->stats.shards, 1);
  EXPECT_TRUE(IsInjective(solved->result.deployment, costs.size()));
}

TEST(HierSolverTest, LongestPathPipelineVerifiesAgainstTheExactObjective) {
  graph::CommGraph app = graph::AggregationTree(2, 4);  // 15-node DAG
  deploy::CostMatrix costs = RackCosts(30, 10);
  MatrixCostSource source(&costs);
  deploy::SolveContext context(Deadline::Infinite());
  auto solved = SolveHierarchical(app, source, deploy::Objective::kLongestPath,
                                  PipelineOptions(), context);
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(IsInjective(solved->result.deployment, costs.size()));
  auto exact = EvaluateObjective(app, source, solved->result.deployment,
                                 deploy::Objective::kLongestPath);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(solved->result.cost, *exact);
}

TEST(HierSolverTest, UnknownShardSolverIsACleanError) {
  graph::CommGraph app = graph::Mesh2D(2, 3);
  deploy::CostMatrix costs = RackCosts(8, 4);
  MatrixCostSource source(&costs);
  HierOptions options;
  options.shard_solver = "annealing";
  deploy::SolveContext context(Deadline::Infinite());
  auto solved = SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                  options, context);
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kNotFound);
  // The registry's roster reaches the caller, so a typo self-explains.
  EXPECT_NE(solved.status().message().find("cp"), std::string::npos);
}

TEST(HierSolverTest, RefusesToRecurseIntoItself) {
  graph::CommGraph app = graph::Mesh2D(2, 3);
  deploy::CostMatrix costs = RackCosts(8, 4);
  MatrixCostSource source(&costs);
  HierOptions options;
  options.shard_solver = "hier";
  deploy::SolveContext context(Deadline::Infinite());
  auto solved = SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                  options, context);
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kInvalidArgument);
}

TEST(HierSolverTest, ReachableThroughTheRegistryFacade) {
  graph::CommGraph app = graph::Mesh2D(3, 3);
  deploy::CostMatrix costs = RackCosts(12, 6);
  deploy::NdpSolveOptions opts;
  opts.objective = deploy::Objective::kLongestLink;
  opts.hier_shard_solver = "g2";
  deploy::SolveContext context(Deadline::After(5.0));
  auto r = deploy::SolveNodeDeploymentByName(app, costs, "hier", opts, context);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsInjective(r->deployment, costs.size()));
  EXPECT_FALSE(r->trace.empty());
}

}  // namespace
}  // namespace cloudia::hier
