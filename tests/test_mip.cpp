#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "solver/mip/branch_and_bound.h"
#include "solver/mip/model.h"

namespace cloudia::mip {
namespace {

TEST(MipModelTest, VarAndRowBookkeeping) {
  MipModel m;
  int x = m.AddBinaryVar(2.0, "x");
  int y = m.AddContinuousVar(1.0, "y");
  EXPECT_EQ(m.num_vars(), 2);
  EXPECT_EQ(m.num_rows(), 1);  // x <= 1 bound row
  EXPECT_TRUE(m.is_integer(x));
  EXPECT_FALSE(m.is_integer(y));
  EXPECT_EQ(m.name(x), "x");
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({1.0, 3.0}), 5.0);
}

TEST(MipModelTest, FeasibilityCheck) {
  MipModel m;
  m.AddBinaryVar(1.0);
  m.AddBinaryVar(1.0);
  m.AddConstraint({{{0, 1.0}, {1, 1.0}}, lp::RowSense::kLe, 1.0});
  EXPECT_TRUE(m.IsFeasible({1.0, 0.0}));
  EXPECT_FALSE(m.IsFeasible({1.0, 1.0}));   // violates row
  EXPECT_FALSE(m.IsFeasible({0.5, 0.0}));   // fractional integer var
  EXPECT_FALSE(m.IsFeasible({-1.0, 0.0}));  // negative
}

TEST(MipTest, IntegerRounding) {
  // min x s.t. 2x >= 3, x integer -> 2 (LP gives 1.5).
  MipModel m;
  m.AddIntegerVar(1.0);
  m.AddConstraint({{{0, 2.0}}, lp::RowSense::kGe, 3.0});
  MipResult r = SolveMip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_NEAR(r.best_bound, r.objective, 1e-6);
}

TEST(MipTest, LpFeasibleButIntegerInfeasible) {
  // 2x = 1 with x integer.
  MipModel m;
  m.AddIntegerVar(1.0);
  m.AddConstraint({{{0, 2.0}}, lp::RowSense::kEq, 1.0});
  MipResult r = SolveMip(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(MipTest, KnapsackMatchesBruteForce) {
  // max value s.t. weight <= W over binaries == min of negated values.
  const std::vector<double> value = {10, 13, 7, 8, 12, 4};
  const std::vector<double> weight = {5, 7, 3, 4, 6, 2};
  const double capacity = 13;
  MipModel m;
  for (double v : value) m.AddBinaryVar(-v);
  lp::Row cap;
  for (size_t i = 0; i < weight.size(); ++i) {
    cap.coeffs.push_back({static_cast<int>(i), weight[i]});
  }
  cap.sense = lp::RowSense::kLe;
  cap.rhs = capacity;
  m.AddConstraint(cap);

  MipResult r = SolveMip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);

  double best = 0;
  for (int mask = 0; mask < (1 << 6); ++mask) {
    double w = 0, v = 0;
    for (int i = 0; i < 6; ++i) {
      if (mask & (1 << i)) {
        w += weight[static_cast<size_t>(i)];
        v += value[static_cast<size_t>(i)];
      }
    }
    if (w <= capacity) best = std::max(best, v);
  }
  EXPECT_NEAR(-r.objective, best, 1e-6);
}

TEST(MipTest, AssignmentWithRandomCosts) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 4;
    std::vector<std::vector<double>> cost(
        n, std::vector<double>(static_cast<size_t>(n)));
    for (auto& row : cost) {
      for (double& c : row) c = std::floor(rng.Uniform(1, 20));
    }
    MipModel m;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        m.AddBinaryVar(cost[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      }
    }
    for (int i = 0; i < n; ++i) {
      lp::Row r;
      for (int j = 0; j < n; ++j) r.coeffs.push_back({n * i + j, 1.0});
      r.sense = lp::RowSense::kEq;
      r.rhs = 1.0;
      m.AddConstraint(r);
    }
    for (int j = 0; j < n; ++j) {
      lp::Row r;
      for (int i = 0; i < n; ++i) r.coeffs.push_back({n * i + j, 1.0});
      r.sense = lp::RowSense::kEq;
      r.rhs = 1.0;
      m.AddConstraint(r);
    }
    MipResult r = SolveMip(m);
    ASSERT_EQ(r.status, MipStatus::kOptimal);

    // Brute force over permutations.
    std::vector<int> perm(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    double best = 1e18;
    do {
      double c = 0;
      for (int i = 0; i < n; ++i) {
        c += cost[static_cast<size_t>(i)][static_cast<size_t>(perm[static_cast<size_t>(i)])];
      }
      best = std::min(best, c);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(r.objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(MipTest, WarmStartSeedsIncumbent) {
  // min -x - y, x,y binary, x + y <= 1. Optimum -1. Warm start (0, 0): obj 0.
  MipModel m;
  m.AddBinaryVar(-1.0);
  m.AddBinaryVar(-1.0);
  m.AddConstraint({{{0, 1.0}, {1, 1.0}}, lp::RowSense::kLe, 1.0});
  MipOptions opts;
  opts.warm_start = {0.0, 0.0};
  MipResult r = SolveMip(m, opts);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
  ASSERT_GE(r.incumbent_trace.size(), 2u);
  EXPECT_NEAR(r.incumbent_trace.front().objective, 0.0, 1e-9);
  // Trace is strictly improving.
  for (size_t i = 1; i < r.incumbent_trace.size(); ++i) {
    EXPECT_LT(r.incumbent_trace[i].objective,
              r.incumbent_trace[i - 1].objective);
  }
}

TEST(MipTest, InfeasibleWarmStartIsRejected) {
  MipModel m;
  m.AddBinaryVar(-1.0);
  m.AddConstraint({{{0, 1.0}}, lp::RowSense::kLe, 0.0});  // forces x = 0
  MipOptions opts;
  opts.warm_start = {1.0};
  MipResult r = SolveMip(m, opts);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(MipTest, LazyConstraintsEnforced) {
  // min -x - y with x, y in [0, 2] integer; hidden constraint x + y <= 3
  // supplied lazily. Optimum -3.
  MipModel m;
  m.AddIntegerVar(-1.0);
  m.AddIntegerVar(-1.0);
  m.AddConstraint({{{0, 1.0}}, lp::RowSense::kLe, 2.0});
  m.AddConstraint({{{1, 1.0}}, lp::RowSense::kLe, 2.0});
  MipOptions opts;
  int calls = 0;
  opts.lazy = [&calls](const std::vector<double>& x,
                       bool /*integral*/) -> std::vector<lp::Row> {
    ++calls;
    if (x[0] + x[1] > 3.0 + 1e-9) {
      return {{{{0, 1.0}, {1, 1.0}}, lp::RowSense::kLe, 3.0}};
    }
    return {};
  };
  MipResult r = SolveMip(m, opts);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
  EXPECT_GT(calls, 0);
  EXPECT_GE(r.lazy_rows_added, 1);
}

TEST(MipTest, NodeLimitYieldsFeasibleOrLimit) {
  MipModel m;
  for (int i = 0; i < 10; ++i) m.AddBinaryVar(-(1.0 + 0.1 * i));
  lp::Row cap;
  for (int i = 0; i < 10; ++i) cap.coeffs.push_back({i, 1.0 + 0.37 * i});
  cap.sense = lp::RowSense::kLe;
  cap.rhs = 7.0;
  m.AddConstraint(cap);
  MipOptions opts;
  opts.max_nodes = 1;
  MipResult r = SolveMip(m, opts);
  EXPECT_TRUE(r.status == MipStatus::kFeasible ||
              r.status == MipStatus::kLimitNoSolution);
  EXPECT_LE(r.nodes, 2);
}

TEST(MipTest, DeadlineRespected) {
  MipModel m;
  for (int i = 0; i < 12; ++i) m.AddBinaryVar(-1.0 - 0.01 * i);
  MipOptions opts;
  opts.deadline = Deadline::After(0);
  MipResult r = SolveMip(m, opts);
  EXPECT_TRUE(r.status == MipStatus::kFeasible ||
              r.status == MipStatus::kLimitNoSolution);
}

TEST(MipTest, ContinuousOnlyProblemSolvedAtRoot) {
  MipModel m;
  m.AddContinuousVar(1.0);
  m.AddConstraint({{{0, 1.0}}, lp::RowSense::kGe, 2.5});
  MipResult r = SolveMip(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.5, 1e-9);
  EXPECT_EQ(r.nodes, 1);
}

TEST(MipTest, StatusNames) {
  EXPECT_STREQ(MipStatusName(MipStatus::kOptimal), "Optimal");
  EXPECT_STREQ(MipStatusName(MipStatus::kLimitNoSolution), "LimitNoSolution");
}

}  // namespace
}  // namespace cloudia::mip
