#include <gtest/gtest.h>

#include "deploy/mip_llndp.h"
#include "deploy/mip_lpndp.h"
#include "deploy/random_search.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

TEST(MipLlndpTest, OptimalOnTinyInstancesVsBruteForce) {
  Rng master(3);
  for (int trial = 0; trial < 6; ++trial) {
    int n = 4;
    int m = 6;
    graph::CommGraph g = graph::RandomSymmetric(n, 2.0, master);
    CostMatrix costs = RandomCosts(m, master);
    MipNdpOptions opts;
    opts.seed = master.Next();
    auto r = SolveLlndpMip(g, costs, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->proven_optimal) << "trial " << trial;
    double expected = BruteForceOptimum(g, costs, Objective::kLongestLink);
    EXPECT_NEAR(r->cost, expected, 1e-6) << "trial " << trial;
  }
}

TEST(MipLlndpTest, NeverWorseThanBootstrapUnderDeadline) {
  Rng master(5);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(11, master);
  MipNdpOptions opts;
  opts.seed = 7;
  opts.deadline = Deadline::After(0.5);
  auto r = SolveLlndpMip(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  auto boot = BootstrapDeployment(mesh, costs, Objective::kLongestLink, 7);
  EXPECT_LE(r->cost, LongestLinkCost(mesh, *boot, costs) + 1e-9);
  EXPECT_TRUE(ValidateDeployment(mesh, r->deployment, costs,
                                 Objective::kLongestLink)
                  .ok());
}

TEST(MipLlndpTest, EdgelessGraphTrivial) {
  Rng master(7);
  auto g = graph::CommGraph::Create(2, {});
  CostMatrix costs = RandomCosts(4, master);
  auto r = SolveLlndpMip(*g, costs, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->proven_optimal);
  EXPECT_DOUBLE_EQ(r->cost, 0.0);
}

TEST(MipLpndpTest, OptimalOnTinyDagsVsBruteForce) {
  Rng master(11);
  for (int trial = 0; trial < 6; ++trial) {
    graph::CommGraph g = graph::RandomDag(4, 0.5, master);
    CostMatrix costs = RandomCosts(6, master);
    MipNdpOptions opts;
    opts.seed = master.Next();
    auto r = SolveLpndpMip(g, costs, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->proven_optimal) << "trial " << trial;
    double expected = BruteForceOptimum(g, costs, Objective::kLongestPath);
    EXPECT_NEAR(r->cost, expected, 1e-6) << "trial " << trial;
  }
}

TEST(MipLpndpTest, AggregationTreeImprovesOverBootstrap) {
  Rng master(13);
  graph::CommGraph tree = graph::AggregationTree(2, 3);  // 7 nodes
  CostMatrix costs = RandomCosts(9, master);
  MipNdpOptions opts;
  opts.seed = 3;
  opts.deadline = Deadline::After(2.0);
  auto r = SolveLpndpMip(tree, costs, opts);
  ASSERT_TRUE(r.ok());
  auto boot = BootstrapDeployment(tree, costs, Objective::kLongestPath, 3);
  auto boot_cost = LongestPathCost(tree, *boot, costs);
  EXPECT_LE(r->cost, *boot_cost + 1e-9);
  EXPECT_TRUE(ValidateDeployment(tree, r->deployment, costs,
                                 Objective::kLongestPath)
                  .ok());
}

TEST(MipLpndpTest, RejectsCyclicGraph) {
  Rng master(17);
  graph::CommGraph ring = graph::Ring(4);
  CostMatrix costs = RandomCosts(6, master);
  EXPECT_FALSE(SolveLpndpMip(ring, costs, {}).ok());
}

TEST(MipNdpTest, TraceImprovesMonotonically) {
  Rng master(19);
  graph::CommGraph mesh = graph::Mesh2D(2, 3);
  CostMatrix costs = RandomCosts(8, master);
  MipNdpOptions opts;
  opts.seed = 23;
  auto r = SolveLlndpMip(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->trace.size(); ++i) {
    EXPECT_LT(r->trace[i].cost, r->trace[i - 1].cost);
  }
  EXPECT_DOUBLE_EQ(r->trace.back().cost, r->cost);
}

TEST(MipNdpTest, ZeroDeadlineReturnsBootstrap) {
  Rng master(23);
  graph::CommGraph mesh = graph::Mesh2D(2, 3);
  CostMatrix costs = RandomCosts(8, master);
  MipNdpOptions opts;
  opts.deadline = Deadline::After(0);
  opts.seed = 29;
  auto r = SolveLlndpMip(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->proven_optimal);
  EXPECT_FALSE(r->deployment.empty());
}

TEST(MipNdpTest, ClusteringStillYieldsValidDeployments) {
  Rng master(31);
  graph::CommGraph mesh = graph::Mesh2D(2, 2);
  CostMatrix costs = RandomCosts(6, master);
  MipNdpOptions opts;
  opts.cost_clusters = 4;
  opts.seed = 37;
  opts.deadline = Deadline::After(2.0);
  auto r = SolveLlndpMip(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ValidateDeployment(mesh, r->deployment, costs,
                                 Objective::kLongestLink)
                  .ok());
}

}  // namespace
}  // namespace cloudia::deploy
