// Randomized property tests for CostEvaluator's incremental API: on random
// graphs, deployments, and moves, the O(deg) SwapCost/MoveCost fast path
// must agree with a full re-evaluation -- bit-identically, since the fast
// path reconstructs the same max over the same doubles -- and the *Delta
// forms must be consistent with Cost(d') - Cost(d).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "deploy/cost.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

struct Instance {
  graph::CommGraph graph;
  CostMatrix costs;
};

// A varied pool of shapes: meshes (every node degree 2-4), random DAGs,
// random symmetric digraphs, sparse rings, and an edgeless graph.
Instance RandomInstance(int trial, Rng& rng, bool need_dag) {
  graph::CommGraph g = [&]() -> graph::CommGraph {
    switch (trial % (need_dag ? 3 : 5)) {
      case 0:
        return graph::RandomDag(4 + static_cast<int>(rng.Below(8)),
                                rng.Uniform(0.1, 0.6), rng);
      case 1:
        return graph::AggregationTree(2 + static_cast<int>(rng.Below(2)), 3);
      case 2:
        return graph::Bipartite(2 + static_cast<int>(rng.Below(3)),
                                3 + static_cast<int>(rng.Below(4)));
      case 3:
        return graph::RandomSymmetric(5 + static_cast<int>(rng.Below(8)),
                                      3.0, rng);
      default:
        return graph::Mesh2D(2 + static_cast<int>(rng.Below(2)),
                             3 + static_cast<int>(rng.Below(3)));
    }
  }();
  // 0-30% spare instances so both swap and move neighborhoods exist.
  int m = g.num_nodes() + static_cast<int>(rng.Below(
                              static_cast<uint64_t>(g.num_nodes()) / 3 + 1));
  return {std::move(g), RandomCosts(m, rng)};
}

std::vector<int> UnusedInstances(const Deployment& d, int m) {
  std::vector<bool> used(static_cast<size_t>(m), false);
  for (int s : d) used[static_cast<size_t>(s)] = true;
  std::vector<int> unused;
  for (int s = 0; s < m; ++s) {
    if (!used[static_cast<size_t>(s)]) unused.push_back(s);
  }
  return unused;
}

// RandomDeployment lives in random_search.h; keep this test focused on
// cost.h by sampling directly.
Deployment RandomDeploymentForTest(int n, int m, Rng& rng) {
  return rng.SampleWithoutReplacement(m, n);
}

void RunTrials(Objective objective) {
  Rng rng(objective == Objective::kLongestLink ? 101 : 202);
  int swap_checks = 0, move_checks = 0;
  for (int trial = 0; trial < 120; ++trial) {
    Instance inst =
        RandomInstance(trial, rng, objective == Objective::kLongestPath);
    const int n = inst.graph.num_nodes();
    const int m = inst.costs.size();
    auto eval = CostEvaluator::Create(&inst.graph, &inst.costs, objective);
    ASSERT_TRUE(eval.ok());

    Deployment d = RandomDeploymentForTest(n, m, rng);
    const double cost = eval->Cost(d);

    // Swaps: a handful of random pairs plus the degenerate a == b.
    for (int probe = 0; probe < 6 && n >= 2; ++probe) {
      int a = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      int b = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      Deployment swapped = d;
      std::swap(swapped[static_cast<size_t>(a)],
                swapped[static_cast<size_t>(b)]);
      const double full = eval->Cost(swapped);
      // Exactness contract: the incremental path returns the same double.
      EXPECT_EQ(eval->SwapCost(d, cost, a, b), full)
          << "trial " << trial << " swap(" << a << "," << b << ")";
      // Delta consistency: Cost(d') == Cost(d) + SwapDelta(...).
      EXPECT_DOUBLE_EQ(cost + eval->SwapDelta(d, cost, a, b), full);
      ++swap_checks;
    }

    // Moves to every unused instance for a few random nodes.
    std::vector<int> unused = UnusedInstances(d, m);
    for (int probe = 0; probe < 4 && n >= 1 && !unused.empty(); ++probe) {
      int node = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      for (int target : unused) {
        Deployment moved = d;
        moved[static_cast<size_t>(node)] = target;
        const double full = eval->Cost(moved);
        EXPECT_EQ(eval->MoveCost(d, cost, node, target), full)
            << "trial " << trial << " move(" << node << "->" << target << ")";
        EXPECT_DOUBLE_EQ(cost + eval->MoveDelta(d, cost, node, target), full);
        ++move_checks;
      }
    }
  }
  // The loop really exercised the API (guards against degenerate pools).
  EXPECT_GT(swap_checks, 100);
  EXPECT_GT(move_checks, 100);
}

TEST(DeltaEvalPropertyTest, LongestLinkMatchesFullEvaluator) {
  RunTrials(Objective::kLongestLink);
}

TEST(DeltaEvalPropertyTest, LongestPathMatchesFullEvaluator) {
  RunTrials(Objective::kLongestPath);
}

// Chains of accepted moves (the local-search usage pattern): tracking the
// cost via the returned SwapCost/MoveCost never drifts from a from-scratch
// evaluation, even after hundreds of accepted moves.
TEST(DeltaEvalPropertyTest, AcceptedMoveChainsStayExact) {
  for (Objective objective :
       {Objective::kLongestLink, Objective::kLongestPath}) {
    Rng rng(303);
    graph::CommGraph g = graph::RandomDag(10, 0.35, rng);
    CostMatrix costs = RandomCosts(13, rng);
    auto eval = CostEvaluator::Create(&g, &costs, objective);
    ASSERT_TRUE(eval.ok());
    Deployment d = rng.SampleWithoutReplacement(13, 10);
    double cost = eval->Cost(d);
    for (int step = 0; step < 300; ++step) {
      int a = static_cast<int>(rng.Below(10));
      int b = static_cast<int>(rng.Below(10));
      cost = eval->SwapCost(d, cost, a, b);
      std::swap(d[static_cast<size_t>(a)], d[static_cast<size_t>(b)]);
      if (step % 7 == 0) {
        std::vector<int> unused = UnusedInstances(d, 13);
        int node = static_cast<int>(rng.Below(10));
        int target = unused[rng.Below(unused.size())];
        cost = eval->MoveCost(d, cost, node, target);
        d[static_cast<size_t>(node)] = target;
      }
      ASSERT_EQ(cost, eval->Cost(d)) << ObjectiveName(objective) << " step "
                                     << step;
    }
  }
}

// Sentinel property: matrices carrying kUnmeasuredCostMs entries (unsampled
// links filled by measure::BuildCostMatrix under allow_missing) must be
// priced identically by the full and incremental paths. Both include
// sentinels in the max -- a deployment over a poisoned link *should* cost
// the sentinel -- so the exactness contract has to hold when sentinels
// appear, disappear, or stay on the bottleneck across a move.
TEST(DeltaEvalPropertyTest, SentinelCostsMatchFullEvaluator) {
  for (Objective objective :
       {Objective::kLongestLink, Objective::kLongestPath}) {
    Rng rng(404);
    int sentinel_bottlenecks = 0;
    for (int trial = 0; trial < 60; ++trial) {
      Instance inst =
          RandomInstance(trial, rng, objective == Objective::kLongestPath);
      const int n = inst.graph.num_nodes();
      const int m = inst.costs.size();
      // Poison 5-30% of off-diagonal links with the unmeasured sentinel.
      const double poison = rng.Uniform(0.05, 0.30);
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < m; ++j) {
          if (i != j && rng.Bernoulli(poison)) {
            inst.costs.At(i, j) = kUnmeasuredCostMs;
          }
        }
      }
      auto eval = CostEvaluator::Create(&inst.graph, &inst.costs, objective);
      ASSERT_TRUE(eval.ok());
      Deployment d = RandomDeploymentForTest(n, m, rng);
      const double cost = eval->Cost(d);
      if (cost >= kUnmeasuredCostMs) ++sentinel_bottlenecks;

      for (int probe = 0; probe < 8 && n >= 2; ++probe) {
        int a = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
        int b = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
        Deployment swapped = d;
        std::swap(swapped[static_cast<size_t>(a)],
                  swapped[static_cast<size_t>(b)]);
        EXPECT_EQ(eval->SwapCost(d, cost, a, b), eval->Cost(swapped))
            << ObjectiveName(objective) << " trial " << trial << " swap(" << a
            << "," << b << ")";
      }
      std::vector<int> unused = UnusedInstances(d, m);
      for (int probe = 0; probe < 8 && n >= 1 && !unused.empty(); ++probe) {
        int node = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
        int target = unused[rng.Below(unused.size())];
        Deployment moved = d;
        moved[static_cast<size_t>(node)] = target;
        EXPECT_EQ(eval->MoveCost(d, cost, node, target), eval->Cost(moved))
            << ObjectiveName(objective) << " trial " << trial << " move("
            << node << "->" << target << ")";
      }
    }
    // The poisoning really put sentinels on bottlenecks, not just in the
    // matrix.
    EXPECT_GT(sentinel_bottlenecks, 10) << ObjectiveName(objective);
  }
}

// Regression: the LLNDP shortcut's tie case. When a swap removes the
// current bottleneck edge but creates a new incident edge of *exactly* the
// old bottleneck cost, the "did the affected max improve?" branch must not
// return a stale value -- the correct answer is the tie cost itself (the
// unaffected edges cannot exceed the old bottleneck). Constructed so the
// bottleneck sits on the swapped pair and the tie is exact by assignment,
// no floating-point luck involved.
TEST(DeltaEvalRegressionTest, LongestLinkBottleneckTieIsExact) {
  // Path graph 0 -> 1 -> 2 -> 3 on 6 instances.
  auto built = graph::CommGraph::Create(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(built.ok());
  graph::CommGraph g = std::move(built).value();
  CostMatrix costs(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) costs.At(i, j) = 0.5;
    }
  }
  const double kTie = 2.25;
  // Deployment: node k -> instance k. Bottleneck is edge 1->2 via (1,2).
  costs.At(1, 2) = kTie;
  // After swapping nodes 2 and 3 (instances 2 and 3), edge 1->2 is priced
  // at (1,3) and edge 2->3 at (3,2): make the new bottleneck an exact tie.
  costs.At(1, 3) = kTie;
  costs.At(3, 2) = 0.5;

  auto eval = CostEvaluator::Create(&g, &costs, Objective::kLongestLink);
  ASSERT_TRUE(eval.ok());
  Deployment d = {0, 1, 2, 3};
  const double cost = eval->Cost(d);
  ASSERT_EQ(cost, kTie);

  Deployment swapped = d;
  std::swap(swapped[2], swapped[3]);
  const double full = eval->Cost(swapped);
  ASSERT_EQ(full, kTie);  // the tie: new bottleneck equals the old one
  EXPECT_EQ(eval->SwapCost(d, cost, 2, 3), full);
  EXPECT_EQ(eval->SwapDelta(d, cost, 2, 3), 0.0);

  // Same tie via a move: relocate node 2 to unused instance 4 with
  // costs(1,4) an exact tie for the removed bottleneck.
  costs.At(1, 4) = kTie;
  costs.At(4, 3) = 0.5;
  auto eval2 = CostEvaluator::Create(&g, &costs, Objective::kLongestLink);
  ASSERT_TRUE(eval2.ok());
  const double cost2 = eval2->Cost(d);
  ASSERT_EQ(cost2, kTie);
  Deployment moved = d;
  moved[2] = 4;
  const double full_moved = eval2->Cost(moved);
  ASSERT_EQ(full_moved, kTie);
  EXPECT_EQ(eval2->MoveCost(d, cost2, 2, 4), full_moved);

  // And the strict-improvement neighbor of the tie: one representable step
  // below the old bottleneck must trigger the full rescan, not the tie
  // shortcut.
  costs.At(1, 3) = std::nextafter(kTie, 0.0);
  auto eval3 = CostEvaluator::Create(&g, &costs, Objective::kLongestLink);
  ASSERT_TRUE(eval3.ok());
  const double cost3 = eval3->Cost(d);
  EXPECT_EQ(eval3->SwapCost(d, cost3, 2, 3), eval3->Cost(swapped));
}

}  // namespace
}  // namespace cloudia::deploy
