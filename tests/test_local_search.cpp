#include <gtest/gtest.h>

#include "deploy/local_search.h"
#include "deploy/random_search.h"
#include "deploy/solve.h"
#include "deploy_test_util.h"
#include "graph/templates.h"

namespace cloudia::deploy {
namespace {

TEST(LocalSearchTest, ProducesValidDeploymentBothObjectives) {
  Rng master(1);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  graph::CommGraph tree = graph::AggregationTree(2, 3);
  CostMatrix costs = RandomCosts(12, master);
  for (auto [g, obj] :
       {std::pair{&mesh, Objective::kLongestLink},
        std::pair{&tree, Objective::kLongestPath}}) {
    LocalSearchOptions opts;
    opts.seed = 5;
    auto r = SolveLocalSearch(*g, costs, obj, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ValidateDeployment(*g, r->deployment, costs, obj).ok());
  }
}

TEST(LocalSearchTest, NeverWorseThanBootstrap) {
  Rng master(2);
  graph::CommGraph mesh = graph::Mesh2D(3, 4);
  CostMatrix costs = RandomCosts(15, master);
  auto boot = BootstrapDeployment(mesh, costs, Objective::kLongestLink, 7);
  LocalSearchOptions opts;
  opts.seed = 7;
  auto r = SolveLocalSearch(mesh, costs, Objective::kLongestLink, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->cost, LongestLinkCost(mesh, *boot, costs) + 1e-12);
}

TEST(LocalSearchTest, ReachesLocalOptimumNoImprovingSwap) {
  Rng master(3);
  graph::CommGraph mesh = graph::Mesh2D(2, 3);
  CostMatrix costs = RandomCosts(8, master);
  LocalSearchOptions opts;
  opts.seed = 9;
  opts.max_restarts = 0;
  auto r = SolveLocalSearch(mesh, costs, Objective::kLongestLink, opts);
  ASSERT_TRUE(r.ok());
  // Verify local optimality: no single swap of two nodes improves.
  auto eval =
      CostEvaluator::Create(&mesh, &costs, Objective::kLongestLink);
  Deployment d = r->deployment;
  for (size_t a = 0; a < d.size(); ++a) {
    for (size_t b = a + 1; b < d.size(); ++b) {
      std::swap(d[a], d[b]);
      EXPECT_GE(eval->Cost(d), r->cost - 1e-12);
      std::swap(d[a], d[b]);
    }
  }
}

TEST(LocalSearchTest, FindsOptimumOnTinyInstancesWithRestarts) {
  Rng master(4);
  int hits = 0;
  for (int trial = 0; trial < 8; ++trial) {
    graph::CommGraph g = graph::RandomSymmetric(5, 2.0, master);
    CostMatrix costs = RandomCosts(7, master);
    LocalSearchOptions opts;
    opts.seed = master.Next();
    opts.max_restarts = 20;
    auto r = SolveLocalSearch(g, costs, Objective::kLongestLink, opts);
    ASSERT_TRUE(r.ok());
    double best = BruteForceOptimum(g, costs, Objective::kLongestLink);
    EXPECT_GE(r->cost, best - 1e-12);
    if (r->cost <= best + 1e-9) ++hits;
  }
  EXPECT_GE(hits, 6) << "multi-start should usually find tiny optima";
}

TEST(LocalSearchTest, DeadlineRespected) {
  Rng master(5);
  graph::CommGraph mesh = graph::Mesh2D(4, 5);
  CostMatrix costs = RandomCosts(25, master);
  LocalSearchOptions opts;
  opts.deadline = Deadline::After(0);
  opts.seed = 11;
  auto r = SolveLocalSearch(mesh, costs, Objective::kLongestLink, opts);
  ASSERT_TRUE(r.ok());  // returns the bootstrap deployment
  EXPECT_FALSE(r->deployment.empty());
}

TEST(LocalSearchTest, UsableThroughTheFacade) {
  Rng master(6);
  graph::CommGraph mesh = graph::Mesh2D(3, 3);
  CostMatrix costs = RandomCosts(11, master);
  NdpSolveOptions opts;
  opts.method = Method::kLocalSearch;
  opts.time_budget_s = 1.0;
  opts.seed = 13;
  auto r = SolveNodeDeployment(mesh, costs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_STREQ(MethodName(Method::kLocalSearch), "LocalSearch");
  EXPECT_TRUE(ValidateDeployment(mesh, r->deployment, costs,
                                 Objective::kLongestLink)
                  .ok());
}

TEST(LocalSearchTest, BeatsR1OnAverage) {
  // Hill climbing from the same bootstrap should beat pure random sampling
  // of equal effort on most instances.
  Rng master(7);
  double ls_total = 0, r1_total = 0;
  graph::CommGraph mesh = graph::Mesh2D(3, 4);
  for (int trial = 0; trial < 6; ++trial) {
    CostMatrix costs = RandomCosts(14, master);
    uint64_t seed = master.Next();
    LocalSearchOptions opts;
    opts.seed = seed;
    opts.max_restarts = 4;
    auto ls = SolveLocalSearch(mesh, costs, Objective::kLongestLink, opts);
    auto r1 = RandomSearchR1(mesh, costs, Objective::kLongestLink, 500, seed);
    ASSERT_TRUE(ls.ok() && r1.ok());
    ls_total += ls->cost;
    r1_total += r1->cost;
  }
  EXPECT_LT(ls_total, r1_total);
}

}  // namespace
}  // namespace cloudia::deploy
