#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/templates.h"
#include "solver/cp/subgraph_iso.h"

namespace cloudia::cp {
namespace {

using graph::CommGraph;
using graph::Edge;

CommGraph MakePattern(int n, std::vector<Edge> edges) {
  auto r = CommGraph::Create(n, std::move(edges));
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

// Checks injectivity and edge preservation.
void ExpectValidEmbedding(const CommGraph& pattern, const BitMatrix& target,
                          const std::vector<int>& phi) {
  ASSERT_EQ(static_cast<int>(phi.size()), pattern.num_nodes());
  std::set<int> used;
  for (int v : phi) {
    EXPECT_TRUE(used.insert(v).second) << "mapping not injective";
    EXPECT_GE(v, 0);
    EXPECT_LT(v, target.rows());
  }
  for (const Edge& e : pattern.edges()) {
    EXPECT_TRUE(target.Get(phi[static_cast<size_t>(e.src)],
                           phi[static_cast<size_t>(e.dst)]))
        << "edge (" << e.src << "," << e.dst << ") not preserved";
  }
}

BitMatrix AdjacencyOf(const CommGraph& g) {
  BitMatrix m(g.num_nodes(), g.num_nodes());
  for (const Edge& e : g.edges()) m.Set(e.src, e.dst);
  return m;
}

TEST(SubgraphIsoTest, PathIntoTriangle) {
  CommGraph path = MakePattern(2, {{0, 1}});
  CommGraph triangle = MakePattern(3, {{0, 1}, {1, 2}, {2, 0}});
  auto phi = FindSubgraphIsomorphism(path, AdjacencyOf(triangle));
  ASSERT_TRUE(phi.ok()) << phi.status().ToString();
  ExpectValidEmbedding(path, AdjacencyOf(triangle), *phi);
}

TEST(SubgraphIsoTest, TriangleIntoPathInfeasible) {
  CommGraph triangle = MakePattern(3, {{0, 1}, {1, 2}, {2, 0}});
  CommGraph path = MakePattern(3, {{0, 1}, {1, 2}});
  auto phi = FindSubgraphIsomorphism(triangle, AdjacencyOf(path));
  ASSERT_FALSE(phi.ok());
  EXPECT_EQ(phi.status().code(), StatusCode::kInfeasible);
}

TEST(SubgraphIsoTest, PatternLargerThanTargetInfeasible) {
  CommGraph pattern = MakePattern(4, {{0, 1}});
  CommGraph target = MakePattern(3, {{0, 1}});
  auto phi = FindSubgraphIsomorphism(pattern, AdjacencyOf(target));
  EXPECT_FALSE(phi.ok());
}

TEST(SubgraphIsoTest, MeshIntoItself) {
  CommGraph mesh = graph::Mesh2D(3, 3);
  auto phi = FindSubgraphIsomorphism(mesh, AdjacencyOf(mesh));
  ASSERT_TRUE(phi.ok()) << phi.status().ToString();
  ExpectValidEmbedding(mesh, AdjacencyOf(mesh), *phi);
}

TEST(SubgraphIsoTest, DirectedChainNeedsDirectedEdges) {
  // Directed 3-chain cannot embed into a 3-node graph with edges reversed.
  CommGraph chain = MakePattern(3, {{0, 1}, {1, 2}});
  CommGraph rev = MakePattern(3, {{1, 0}, {2, 1}});
  // rev *does* contain a directed chain 2 -> 1 -> 0, so this is feasible.
  auto phi = FindSubgraphIsomorphism(chain, AdjacencyOf(rev));
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ((*phi)[0], 2);
  EXPECT_EQ((*phi)[1], 1);
  EXPECT_EQ((*phi)[2], 0);
}

TEST(SubgraphIsoTest, PlantedEmbeddingIsFoundInRandomTarget) {
  Rng rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    CommGraph pattern = graph::RandomSymmetric(8, 3.0, rng);
    // Plant the pattern into a 20-node target and add random extra edges.
    int m = 20;
    BitMatrix target(m, m);
    auto injection = rng.SampleWithoutReplacement(m, pattern.num_nodes());
    for (const Edge& e : pattern.edges()) {
      target.Set(injection[static_cast<size_t>(e.src)],
                 injection[static_cast<size_t>(e.dst)]);
    }
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        if (i != j && rng.Bernoulli(0.1)) target.Set(i, j);
      }
    }
    auto phi = FindSubgraphIsomorphism(pattern, target);
    ASSERT_TRUE(phi.ok()) << "trial " << trial;
    ExpectValidEmbedding(pattern, target, *phi);
  }
}

TEST(SubgraphIsoTest, FiltersPreserveFeasibilityDecision) {
  Rng rng(7);
  int agree = 0;
  for (int trial = 0; trial < 30; ++trial) {
    CommGraph pattern = graph::RandomSymmetric(6, 2.5, rng);
    int m = 9;
    BitMatrix target(m, m);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        if (i != j && rng.Bernoulli(0.35)) target.Set(i, j);
      }
    }
    SipOptions with, without;
    without.degree_filter = false;
    without.neighborhood_filter = false;
    auto a = FindSubgraphIsomorphism(pattern, target, with);
    auto b = FindSubgraphIsomorphism(pattern, target, without);
    ASSERT_EQ(a.ok(), b.ok()) << "filters changed feasibility, trial " << trial;
    if (a.ok()) {
      ExpectValidEmbedding(pattern, target, *a);
      ExpectValidEmbedding(pattern, target, *b);
      ++agree;
    }
  }
  EXPECT_GT(agree, 0) << "all trials infeasible; test too weak";
}

TEST(SubgraphIsoTest, HintsAreUsedWhenValid) {
  CommGraph pattern = MakePattern(2, {{0, 1}});
  CommGraph target = MakePattern(4, {{0, 1}, {2, 3}});
  SipOptions opts;
  opts.value_hints = {2, 3};
  auto phi = FindSubgraphIsomorphism(pattern, AdjacencyOf(target), opts);
  ASSERT_TRUE(phi.ok());
  EXPECT_EQ((*phi)[0], 2);
  EXPECT_EQ((*phi)[1], 3);
}

TEST(SubgraphIsoTest, RejectsWrongHintSize) {
  CommGraph pattern = MakePattern(2, {{0, 1}});
  CommGraph target = MakePattern(3, {{0, 1}});
  SipOptions opts;
  opts.value_hints = {0};
  auto phi = FindSubgraphIsomorphism(pattern, AdjacencyOf(target), opts);
  ASSERT_FALSE(phi.ok());
  EXPECT_EQ(phi.status().code(), StatusCode::kInvalidArgument);
}

TEST(SubgraphIsoTest, TimeoutSurfaces) {
  // A hard-ish instance with a zero deadline must report Timeout.
  CommGraph mesh = graph::Mesh2D(4, 4);
  SipOptions opts;
  opts.limits.deadline = Deadline::After(0);
  auto phi = FindSubgraphIsomorphism(mesh, AdjacencyOf(mesh), opts);
  ASSERT_FALSE(phi.ok());
  EXPECT_EQ(phi.status().code(), StatusCode::kTimeout);
}

TEST(SubgraphIsoTest, StatsReported) {
  CommGraph mesh = graph::Mesh2D(3, 3);
  SearchStats stats;
  auto phi = FindSubgraphIsomorphism(mesh, AdjacencyOf(mesh), {}, &stats);
  ASSERT_TRUE(phi.ok());
  EXPECT_GT(stats.nodes, 0);
}

}  // namespace
}  // namespace cloudia::cp
