// Decomposition edge cases the hierarchical solver leans on: uneven
// cluster sizes, k beyond the distinct-value count, and unmeasured
// sentinel entries flowing through MatrixDecomposer without poisoning the
// reduced matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/kmeans1d.h"
#include "common/rng.h"
#include "deploy/cost.h"
#include "graph/templates.h"
#include "hier/decompose.h"

namespace cloudia::hier {
namespace {

// Rack-structured costs: instances i, j in the same rack of `rack_size`
// are ~intra ms apart, otherwise ~inter ms, with a small deterministic
// jitter so values are distinct but clearly bimodal.
deploy::CostMatrix RackCosts(int m, int rack_size, double intra = 0.3,
                             double inter = 1.6, uint64_t seed = 11) {
  deploy::CostMatrix costs(m);
  Rng rng(seed);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      const bool same = i / rack_size == j / rack_size;
      costs.At(i, j) = (same ? intra : inter) + rng.Uniform(0.0, 0.05);
    }
  }
  return costs;
}

TEST(KMeans1DEdgeCases, HighlyUnevenClusterSizesRecoverBothModes) {
  // 200 values near 0.3 and only 3 near 5.0: the tiny cluster must still
  // get its own center instead of being absorbed as noise.
  std::vector<double> values;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) values.push_back(0.3 + rng.Uniform(0.0, 0.02));
  values.push_back(5.0);
  values.push_back(5.01);
  values.push_back(5.02);
  auto clustering = cluster::KMeans1D(values, 2);
  ASSERT_TRUE(clustering.ok());
  ASSERT_EQ(clustering->centers.size(), 2u);
  EXPECT_NEAR(clustering->centers[0], 0.31, 0.05);
  EXPECT_NEAR(clustering->centers[1], 5.01, 0.05);
  // The three outliers all land in the second cluster.
  for (size_t i = 200; i < values.size(); ++i) {
    EXPECT_EQ(clustering->assignment[i], 1);
  }
}

TEST(KMeans1DEdgeCases, KBeyondDistinctValuesIsIdentity) {
  std::vector<double> values = {0.5, 0.5, 1.0, 1.0, 1.0, 2.0};
  auto clustering = cluster::KMeans1D(values, 10);  // only 3 distinct
  ASSERT_TRUE(clustering.ok());
  EXPECT_DOUBLE_EQ(clustering->cost, 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        clustering->centers[static_cast<size_t>(clustering->assignment[i])],
        values[i]);
  }
}

TEST(ClusterCostMatrixEdgeCases, KBeyondDistinctValuesKeepsEntriesExact) {
  deploy::CostMatrix costs(4);
  const double vals[] = {0.4, 0.9, 1.7};
  int t = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) costs.At(i, j) = vals[t++ % 3];
    }
  }
  // 12 off-diagonal entries, 3 distinct values, k = 8: every entry maps to
  // a center equal to itself.
  auto clustered = deploy::ClusterCostMatrix(costs, 8);
  ASSERT_TRUE(clustered.ok());
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(clustered->At(i, j), costs.At(i, j)) << i << "," << j;
    }
  }
}

TEST(ClusterCostMatrixEdgeCases, UnevenValueMassStillSeparatesModes) {
  // 10x10 matrix, 90 entries at ~0.3 and a handful at ~2.0. With k=2 the
  // rare expensive entries must keep a high center, not be averaged away.
  deploy::CostMatrix costs = RackCosts(10, 9, 0.3, 2.0);
  auto clustered = deploy::ClusterCostMatrix(costs, 2);
  ASSERT_TRUE(clustered.ok());
  double lo = 1e300, hi = 0.0;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i == j) continue;
      lo = std::min(lo, clustered->At(i, j));
      hi = std::max(hi, clustered->At(i, j));
    }
  }
  EXPECT_LT(lo, 0.5);
  EXPECT_GT(hi, 1.5);
}

TEST(MatrixDecomposerTest, RecoversRackClustersWithUnevenSizes) {
  // 20-instance rack followed by a 4-instance rack: auto clustering must
  // find both despite the 5x size imbalance.
  deploy::CostMatrix costs = RackCosts(24, 20);
  MatrixCostSource source(&costs);
  graph::CommGraph app = graph::Mesh2D(3, 4);
  auto d = MatrixDecomposer().Decompose(app, source);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->clusters.count(), 2);
  EXPECT_EQ(d->clusters.members[0].size(), 20u);
  EXPECT_EQ(d->clusters.members[1].size(), 4u);
  // Node groups partition the application exactly.
  std::vector<int> seen(static_cast<size_t>(app.num_nodes()), 0);
  for (const auto& group : d->node_groups) {
    for (int node : group) ++seen[static_cast<size_t>(node)];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(MatrixDecomposerTest, ForcedKMergesAndSplits) {
  deploy::CostMatrix costs = RackCosts(24, 12);  // two natural racks
  MatrixCostSource source(&costs);
  graph::CommGraph app = graph::Mesh2D(2, 4);

  DecomposeOptions one;
  one.clusters = 1;
  auto merged = MatrixDecomposer(one).Decompose(app, source);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->clusters.count(), 1);
  EXPECT_EQ(merged->clusters.members[0].size(), 24u);

  DecomposeOptions four;
  four.clusters = 4;
  auto split = MatrixDecomposer(four).Decompose(app, source);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->clusters.count(), 4);
  size_t total = 0;
  for (const auto& members : split->clusters.members) {
    EXPECT_FALSE(members.empty());
    total += members.size();
  }
  EXPECT_EQ(total, 24u);
}

TEST(MatrixDecomposerTest, SentinelEntriesDoNotPoisonTheReducedMatrix) {
  deploy::CostMatrix costs = RackCosts(16, 8);
  // Knock out a handful of cross-rack measurements: the reduced entry must
  // average only the surviving measured samples.
  costs.At(0, 8) = deploy::kUnmeasuredCostMs;
  costs.At(8, 0) = deploy::kUnmeasuredCostMs;
  costs.At(1, 9) = deploy::kUnmeasuredCostMs;
  MatrixCostSource source(&costs);
  graph::CommGraph app = graph::Mesh2D(2, 5);
  auto d = MatrixDecomposer().Decompose(app, source);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->clusters.count(), 2);
  for (int a = 0; a < d->reduced.size(); ++a) {
    for (int b = 0; b < d->reduced.size(); ++b) {
      if (a == b) continue;
      EXPECT_LT(d->reduced.At(a, b), deploy::kUnmeasuredCostMs)
          << a << "," << b;
      EXPECT_GT(d->reduced.At(a, b), 0.0);
    }
  }
}

TEST(MatrixDecomposerTest, AllSentinelClusterPairKeepsTheSentinel) {
  // Two 3-instance racks with *every* cross measurement missing: the
  // reduced cross entry must stay kUnmeasuredCostMs ("unknown"), never an
  // average that includes the 1e6 sentinel as if it were data.
  deploy::CostMatrix costs(6);
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i == j) continue;
      const bool same = (i < 3) == (j < 3);
      costs.At(i, j) =
          same ? 0.3 + rng.Uniform(0.0, 0.02) : deploy::kUnmeasuredCostMs;
    }
  }
  MatrixCostSource source(&costs);
  graph::CommGraph app = graph::Ring(4);
  DecomposeOptions options;
  options.clusters = 2;
  auto d = MatrixDecomposer(options).Decompose(app, source);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->clusters.count(), 2);
  EXPECT_GE(d->reduced.At(0, 1), deploy::kUnmeasuredCostMs);
  EXPECT_GE(d->reduced.At(1, 0), deploy::kUnmeasuredCostMs);
  EXPECT_LT(d->reduced.At(0, 0), 1.0);  // diagonal stays 0
}

TEST(MatrixDecomposerTest, DecompositionIsDeterministic) {
  deploy::CostMatrix costs = RackCosts(32, 8);
  MatrixCostSource source(&costs);
  graph::CommGraph app = graph::Mesh2D(4, 6);
  auto first = MatrixDecomposer().Decompose(app, source);
  auto second = MatrixDecomposer().Decompose(app, source);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->clusters.cluster_of, second->clusters.cluster_of);
  EXPECT_EQ(first->group_of, second->group_of);
  EXPECT_EQ(first->group_cluster, second->group_cluster);
}

}  // namespace
}  // namespace cloudia::hier
