// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Every binary reproduces one figure of the VLDBJ paper: it prints the
// paper's claim, runs the experiment against the simulated cloud, and prints
// the same series the figure plots. Wall-clock budgets follow the paper's
// scaled by CLOUDIA_BENCH_SCALE (default 0.04; 1.0 = paper-scale budgets).
#ifndef CLOUDIA_BENCH_BENCH_UTIL_H_
#define CLOUDIA_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "deploy/cost.h"
#include "measure/protocols.h"
#include "netsim/cloud.h"

namespace cloudia::bench {

/// CLOUDIA_BENCH_SCALE env var (default 0.04), clamped to [0.001, 1.0].
double Scale();

/// paper_seconds * Scale(), floored at `min_seconds`.
double ScaledSeconds(double paper_seconds, double min_seconds = 1.0);

/// Prints the figure banner: id, the paper's finding, our setup note.
void PrintHeader(const std::string& figure, const std::string& paper_claim,
                 const std::string& setup);

/// Prints an empirical CDF as aligned "value cumulative" rows.
void PrintCdf(const std::string& value_label, std::vector<double> values,
              int points = 20);

/// Prints min/p10/p50/p90/max of `values` on one line.
void PrintQuantiles(const std::string& label, std::vector<double> values);

/// Allocates `n` EC2-profile instances from a fresh cloud with `seed`.
struct CloudFixture {
  CloudFixture(net::ProviderProfile profile, uint64_t seed, int n);
  net::CloudSimulator cloud;
  std::vector<net::Instance> instances;
};

/// Staged-protocol mean-latency matrix over `virtual_s` of measurement.
deploy::CostMatrix MeasuredMeanCosts(const net::CloudSimulator& cloud,
                                     const std::vector<net::Instance>& instances,
                                     double virtual_s, uint64_t seed);

/// All off-diagonal entries of a cost matrix.
std::vector<double> OffDiagonal(const deploy::CostMatrix& m);

// -- Unified bench metric schema ---------------------------------------------
//
// Every bench binary's --json output is one object:
//   {"bench": "<binary name>", "metrics": [
//      {"name": "...", "value": <double>, "unit": "...", "gate": "..."}]}
// Metric names embed the configuration that produced them (for example
// "hier.q256.ratio") so tools/bench_snapshot.cpp only ever compares metrics
// measured under identical settings -- no per-bench special cases.

/// One scalar measurement. `gate` tells the snapshot checker how to compare
/// against a baseline value:
///   ""       informational only, never gated (absolute wall times);
///   "lower"  regression when value exceeds baseline by the tolerance;
///   "higher" regression when value falls below baseline by the tolerance;
///   "near"   regression when value differs from baseline either way
///            (determinism counts, quality ratios pinned by construction).
struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;
  std::string gate;
};

/// Serializes `metrics` in the unified schema to `path` ("-" = stdout).
/// Returns false (with a stderr note) when the file cannot be written.
bool WriteMetricsJson(const std::string& path, const std::string& bench,
                      const std::vector<Metric>& metrics);

}  // namespace cloudia::bench

#endif  // CLOUDIA_BENCH_BENCH_UTIL_H_
