// Fig. 18: latency heterogeneity in Google Compute Engine.
#include "provider_figures.h"

int main() {
  cloudia::bench::RunProviderCdfFigure(
      "Figure 18: latency heterogeneity in Google Compute Engine",
      "~5% of pairs below 0.32 ms, top 5% above 0.5 ms; narrower spread "
      "than EC2",
      cloudia::net::GoogleComputeEngineProfile(), /*n=*/50, /*seed=*/18);
  return 0;
}
