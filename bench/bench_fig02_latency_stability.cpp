// Fig. 2: mean latencies of four representative links over a 10-day window,
// averaged every 2 hours -- stable over time.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 2: mean latency stability in EC2",
      "per-link mean latencies stay flat over 200 hours (measurements "
      "averaged every 2 h)",
      "4 representative links, model mean + measurement averaging noise");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/2, /*n=*/100);
  // Representative links: pick pairs spanning the latency range.
  const std::pair<int, int> links[4] = {{0, 1}, {10, 55}, {20, 77}, {40, 90}};
  Rng rng(7);

  TextTable t({"time[h]", "link1[ms]", "link2[ms]", "link3[ms]", "link4[ms]"});
  for (int hour = 0; hour <= 200; hour += 2) {
    std::vector<std::string> row = {StrFormat("%d", hour)};
    for (const auto& [a, b] : links) {
      // Average of 200 RTT samples spread across the 2h bucket (the paper
      // averages all measurements of the window).
      double sum = 0;
      for (int s = 0; s < 200; ++s) {
        double t = hour + 2.0 * s / 200.0;
        sum += fx.cloud.SampleRtt(fx.instances[static_cast<size_t>(a)],
                                  fx.instances[static_cast<size_t>(b)],
                                  net::kDefaultProbeBytes, t, rng);
      }
      row.push_back(StrFormat("%.4f", sum / 200));
    }
    t.AddRow(row);
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
