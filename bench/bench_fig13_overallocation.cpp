// Fig. 13: effect of the over-allocation ratio on the behavioral
// simulation's time-to-solution. The default always uses the first 100
// instances; ClouDiA chooses 100 out of the first (1+x)*100.
#include <cstdio>

#include "common/table.h"
#include "pipeline.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 13: time-to-solution vs over-allocation ratio",
      "16% improvement with 0% extra (pure injection), 28% with 10%, 38% "
      "with 50%; the first 10% of over-allocation helps most",
      "behavioral simulation, 100 nodes; 150 instances allocated at once, "
      "ClouDiA uses the first (1+x)*100");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/13, /*n=*/150);
  graph::CommGraph mesh = bench::WorkloadGraph(bench::Workload::kBehavioral);

  TextTable t({"over-allocation[%]", "default[ms]", "ClouDiA[ms]",
               "improvement[%]"});
  for (int pct : {0, 10, 20, 30, 40, 50}) {
    int used = 100 + pct;
    std::vector<net::Instance> subset(fx.instances.begin(),
                                      fx.instances.begin() + used);
    bench::PipelineOutcome out = bench::RunPipeline(
        fx.cloud, subset, bench::Workload::kBehavioral,
        measure::CostMetric::kMean, /*seed=*/static_cast<uint64_t>(pct) + 5);
    t.AddRow({StrFormat("%d", pct), StrFormat("%.1f", out.default_ms),
              StrFormat("%.1f", out.optimized_ms),
              StrFormat("%.1f", out.ReductionPercent())});
    std::printf("over-allocation %2d %%  improvement %5.1f %%\n", pct,
                out.ReductionPercent());
  }
  std::printf("\n%s", t.ToString().c_str());
  return 0;
}
