// Fig. 11: relative application-performance improvement when the deployment
// is searched with the mean+SD or 99th-percentile cost metric instead of
// plain mean latency.
#include <cstdio>

#include "common/table.h"
#include "pipeline.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 11: other cost metrics vs mean latency",
      "99% percentile hurts all three workloads; mean+SD helps simulation "
      "and aggregation slightly and hurts the KV store; differences are not "
      "dramatic -- mean latency is robust",
      "same allocation per workload; deployment searched under each metric, "
      "then the real workload is run");

  TextTable t({"workload", "metric", "app time[ms]",
               "improvement vs mean[%]"});
  for (bench::Workload w :
       {bench::Workload::kBehavioral, bench::Workload::kAggregation,
        bench::Workload::kKvStore}) {
    graph::CommGraph g = bench::WorkloadGraph(w);
    int total = g.num_nodes() + g.num_nodes() / 10;
    bench::CloudFixture fx(net::AmazonEc2Profile(),
                           /*seed=*/1100 + static_cast<int>(w), total);
    double mean_time = 0.0;
    for (measure::CostMetric metric :
         {measure::CostMetric::kMean, measure::CostMetric::kMeanPlusStdDev,
          measure::CostMetric::kP99}) {
      bench::PipelineOutcome out =
          bench::RunPipeline(fx.cloud, fx.instances, w, metric, 7);
      if (metric == measure::CostMetric::kMean) mean_time = out.optimized_ms;
      double improvement =
          mean_time > 0
              ? 100.0 * (mean_time - out.optimized_ms) / mean_time
              : 0.0;
      t.AddRow({bench::WorkloadName(w), measure::CostMetricName(metric),
                StrFormat("%.1f", out.optimized_ms),
                StrFormat("%+.1f", improvement)});
      std::printf("%-22s %-8s app time %9.1f ms  (%+5.1f %% vs mean)\n",
                  bench::WorkloadName(w), measure::CostMetricName(metric),
                  out.optimized_ms, improvement);
    }
  }
  std::printf("\n%s", t.ToString().c_str());
  return 0;
}
