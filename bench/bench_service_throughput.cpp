// Service-layer throughput: the cached/coalesced AdvisorService vs naive
// per-request sessions on a mixed multi-tenant workload.
//
// The paper's cost split (Sect. 6.2) is that measurement is the expensive,
// billed step while solving the cached matrix is cheap. A naive deployment
// advisor re-measures per request; the AdvisorService shares measurements
// through its cost-matrix cache (single-flight) and coalesces byte-identical
// requests, so a 32-request workload over a handful of environments pays for
// only a handful of measurements. This bench demonstrates:
//   * >= 5x fewer measurement runs than naive per-request sessions,
//   * higher end-to-end throughput on the same workload,
//   * bit-identical results across repeated --threads=1 service runs.
//
// Flags: --requests=N (default 32), --duration=S (virtual measurement
// seconds per environment, default 45), --threads=N (service workers,
// default 4), --skip-determinism, --json=PATH (unified metrics, see
// bench_util.h).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "graph/templates.h"
#include "service/advisor_service.h"

namespace {

using namespace cloudia;

struct Workload {
  std::vector<service::DeploymentRequest> requests;
  // Graph storage the request pointers refer into (stable addresses).
  std::vector<graph::CommGraph> graphs;
};

// A mixed multi-tenant workload: `n` requests cycling over 4 environments,
// 3 application graphs, 4 solver methods, and 2 objectives, with every 8th
// request a byte-identical twin of its predecessor (coalescing fodder).
Workload BuildWorkload(int n, double measure_duration_s) {
  Workload w;
  w.graphs.push_back(graph::Mesh2D(5, 6));           // 30 nodes
  w.graphs.push_back(graph::AggregationTree(3, 3));  // 13 nodes
  w.graphs.push_back(graph::Mesh2D(4, 5));           // 20 nodes

  struct Env {
    const char* provider;
    int instances;
    uint64_t seed;
  };
  const Env envs[4] = {
      {"ec2", 33, 7}, {"ec2", 44, 8}, {"gce", 33, 9}, {"rackspace", 33, 10}};
  const char* methods[4] = {"g2", "local", "cp", "r1"};

  for (int i = 0; i < n; ++i) {
    if (i % 8 == 7 && !w.requests.empty()) {
      // Byte-identical twin of the previous request.
      w.requests.push_back(w.requests.back());
      continue;
    }
    const Env& env = envs[i % 4];
    service::DeploymentRequest req;
    req.environment.provider = env.provider;
    req.environment.instances = env.instances;
    req.environment.seed = env.seed;
    req.environment.measure_duration_s = measure_duration_s;
    const int graph_idx = i % 3;
    req.app = &w.graphs[static_cast<size_t>(graph_idx)];
    req.solve.method = methods[(i / 4) % 4];
    // LPNDP needs an acyclic graph (and CP is LLNDP-only, paper Sect. 4.4):
    // route longest-path only to non-CP solves on the aggregation tree.
    req.solve.objective = (graph_idx == 1 && i % 2 == 1 &&
                           req.solve.method != std::string("cp"))
                              ? deploy::Objective::kLongestPath
                              : deploy::Objective::kLongestLink;
    req.solve.time_budget_s = 0.3;
    req.solve.cost_clusters = 20;
    req.solve.seed = static_cast<uint64_t>(17 + i / 4);
    req.priority = i % 3;
    w.requests.push_back(std::move(req));
  }
  return w;
}

struct RunOutcome {
  double wall_s = 0.0;
  uint64_t measurements = 0;
  int failed = 0;
  std::vector<double> costs;                         // per request, in order
  std::vector<deploy::Deployment> deployments;       // per request, in order
};

// Naive baseline: every request hand-drives its own measure + solve, exactly
// what callers do without the service layer.
RunOutcome RunNaive(const Workload& w) {
  RunOutcome out;
  Stopwatch clock;
  for (const service::DeploymentRequest& req : w.requests) {
    auto measured = service::MeasureEnvironment(req.environment);
    ++out.measurements;
    if (!measured.ok()) {
      ++out.failed;
      out.costs.push_back(-1);
      out.deployments.emplace_back();
      continue;
    }
    cloudia::DeploymentSession session(nullptr, req.app, {});
    Status adopted =
        session.AdoptMeasurement(std::move(measured->instances),
                                 std::move(measured->costs),
                                 measured->measure_virtual_s);
    CLOUDIA_CHECK(adopted.ok());
    cloudia::SolveSpec spec = req.solve;
    spec.threads = 1;
    auto solve = session.Solve(spec);
    if (!solve.ok()) {
      ++out.failed;
      out.costs.push_back(-1);
      out.deployments.emplace_back();
      continue;
    }
    out.costs.push_back(solve->cost_ms);
    out.deployments.push_back(solve->result.deployment);
  }
  out.wall_s = clock.ElapsedSeconds();
  return out;
}

RunOutcome RunService(const Workload& w, int threads) {
  service::AdvisorService::Options options;
  options.threads = threads;
  options.start_paused = true;  // schedule = pure function of the workload
  service::AdvisorService advisor(options);

  Stopwatch clock;
  std::vector<service::RequestHandle> handles;
  handles.reserve(w.requests.size());
  for (const service::DeploymentRequest& req : w.requests) {
    handles.push_back(advisor.Submit(req));
  }
  advisor.Resume();

  RunOutcome out;
  for (service::RequestHandle& handle : handles) {
    const service::ServiceResult& r = handle.Wait();
    if (!r.status.ok()) {
      ++out.failed;
      out.costs.push_back(-1);
      out.deployments.emplace_back();
      continue;
    }
    out.costs.push_back(r.solve.cost_ms);
    out.deployments.push_back(r.solve.result.deployment);
  }
  out.wall_s = clock.ElapsedSeconds();
  out.measurements = advisor.cache_stats().measurements;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  CLOUDIA_CHECK(flags.ok());
  auto requests = flags->GetInt("requests", 32);
  auto duration = flags->GetDouble("duration", 45.0);
  auto threads = flags->GetInt("threads", 4);
  CLOUDIA_CHECK(requests.ok() && duration.ok() && threads.ok());
  const bool skip_determinism = flags->GetBool("skip-determinism", false);

  std::printf(
      "service throughput: %lld mixed requests over 4 environments\n"
      "(measurement: staged protocol, %.0f virtual s per environment)\n\n",
      static_cast<long long>(*requests), *duration);

  Workload w = BuildWorkload(static_cast<int>(*requests), *duration);

  RunOutcome naive = RunNaive(w);
  std::printf("naive per-request sessions : %6.2f s wall, %llu measurements"
              ", %d failed\n",
              naive.wall_s,
              static_cast<unsigned long long>(naive.measurements),
              naive.failed);

  RunOutcome served = RunService(w, static_cast<int>(*threads));
  std::printf("AdvisorService (threads=%lld): %6.2f s wall, "
              "%llu measurements, %d failed\n\n",
              static_cast<long long>(*threads), served.wall_s,
              static_cast<unsigned long long>(served.measurements),
              served.failed);

  const double measure_ratio =
      served.measurements > 0
          ? static_cast<double>(naive.measurements) /
                static_cast<double>(served.measurements)
          : 0.0;
  const double speedup =
      served.wall_s > 0 ? naive.wall_s / served.wall_s : 0.0;
  std::printf("measurement runs : %llu -> %llu (%.1fx fewer; need >= 5x: %s)\n",
              static_cast<unsigned long long>(naive.measurements),
              static_cast<unsigned long long>(served.measurements),
              measure_ratio, measure_ratio >= 5.0 ? "PASS" : "FAIL");
  std::printf("throughput       : %.2fx vs naive (need > 1x: %s)\n", speedup,
              speedup > 1.0 ? "PASS" : "FAIL");

  bool deterministic = true;
  if (!skip_determinism) {
    // Two fresh single-threaded services over the same workload must agree
    // bit-for-bit: costs and deployments.
    RunOutcome a = RunService(w, 1);
    RunOutcome b = RunService(w, 1);
    deterministic = a.costs == b.costs && a.deployments == b.deployments &&
                    a.failed == 0 && b.failed == 0;
    std::printf("determinism      : --threads=1 repeats bit-identical: %s\n",
                deterministic ? "PASS" : "FAIL");
  }

  const bool pass = measure_ratio >= 5.0 && speedup > 1.0 && deterministic &&
                    naive.failed == 0 && served.failed == 0;
  const std::string json_path = flags->GetString("json", "");
  if (!json_path.empty()) {
    // Gated: the measurement-sharing ratio (a deterministic count ratio for
    // a fixed workload -- "near") and the PASS indicators. Informational:
    // wall clocks and the wall-clock speedup (machine-load dependent).
    std::vector<bench::Metric> metrics = {
        {"service.measure_ratio", measure_ratio, "x", "near"},
        {"service.measurements",
         static_cast<double>(served.measurements), "", "near"},
        {"service.speedup", speedup, "x", ""},
        {"service.naive_wall", naive.wall_s, "s", ""},
        {"service.served_wall", served.wall_s, "s", ""},
        {"service.deterministic", deterministic ? 1.0 : 0.0, "bool", "near"},
        {"service.pass", pass ? 1.0 : 0.0, "bool", "near"},
    };
    if (bench::WriteMetricsJson(json_path, "bench_service_throughput",
                                metrics)) {
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  std::printf("\noverall: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
