// Fig. 16: latency ordered by IP distance -- a negative result: IP distance
// does not order latencies monotonically (e.g. the lowest latencies appear
// at IP distance 2, not 1).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/table.h"
#include "measure/approximations.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 16: latency order by IP distance (Appendix 2)",
      "monotonicity does not hold: groups overlap and the lowest latencies "
      "are observed at IP distance = 2",
      "100 EC2-profile instances, 8-bit (octet) IP distance groups");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/16, /*n=*/100);
  auto links = measure::ComputeLinkApproximations(fx.cloud, fx.instances);

  std::map<int, std::vector<double>> groups;
  for (const auto& link : links) {
    groups[link.ip_distance].push_back(link.mean_latency_ms);
  }
  for (auto& [dist, values] : groups) {
    bench::PrintQuantiles(StrFormat("IP distance = %d", dist),
                          std::move(values));
  }
  double violations = measure::ProxyOrderViolationFraction(
      links, &measure::LinkApproximation::ip_distance);
  std::printf("\ncross-group order violations: %.1f %% of pair comparisons "
              "(0%% would mean IP distance predicts latency)\n",
              100.0 * violations);
  return 0;
}
