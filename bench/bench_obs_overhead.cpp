// Observability overhead: the disabled path must be free, the enabled path
// cheap, and tracing must never change what a solver computes.
//
// Three claims, each a gated metric:
//
//   * obs.disabled_ratio ("lower", baseline 1.0): a hot swap-delta loop
//     with detached obs handles (one null check per iteration -- exactly
//     what instrumented solver code pays when no registry/tracer is
//     attached) vs the same loop bare. PASS requires < 1% overhead.
//   * obs.bit_identical ("near", 1.0): a single-threaded local-search solve
//     with a tracer + registry attached returns the same cost, deployment,
//     and iteration count as the same solve with observability off.
//   * obs.enabled_counter_ns / obs.enabled_span_ns (informational): cost of
//     one attached Counter::Add and one full Begin/End span round trip.
//
// Flags: --nodes=N (default 20), --instances=M (default 40),
// --iters=N (hot-loop iterations, default 2000000), --reps=R (min-of-R
// timing, default 5), --seed=N (default 7), --json=PATH.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "deploy/cost.h"
#include "deploy/solve.h"
#include "graph/templates.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace cloudia;

deploy::CostMatrix RandomCosts(int m, Rng& rng) {
  deploy::CostMatrix costs(m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i != j) costs.At(i, j) = rng.Uniform(0.2, 1.4);
    }
  }
  return costs;
}

// Min-of-reps wall time of `body(iters)`; the min discards scheduler noise.
template <typename Body>
double MinSeconds(int reps, const Body& body) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    body();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  CLOUDIA_CHECK(flags.ok());
  auto nodes_flag = flags->GetInt("nodes", 20);
  auto instances_flag = flags->GetInt("instances", 40);
  auto iters_flag = flags->GetInt("iters", 2000000);
  auto reps_flag = flags->GetInt("reps", 5);
  auto seed_flag = flags->GetInt("seed", 7);
  CLOUDIA_CHECK(nodes_flag.ok() && instances_flag.ok() && iters_flag.ok() &&
                reps_flag.ok() && seed_flag.ok());
  const int nodes = static_cast<int>(*nodes_flag);
  const int instances = static_cast<int>(*instances_flag);
  const long long iters = *iters_flag;
  const int reps = static_cast<int>(*reps_flag);
  const uint64_t seed = static_cast<uint64_t>(*seed_flag);
  const std::string json = flags->GetString("json", "");

  bench::PrintHeader(
      "obs-overhead",
      "observability must observe, not participate: disabled handles cost "
      "one null check and tracing never changes solver output",
      "swap-delta hot loop bare vs with detached obs handles; "
      "single-threaded local solve with and without a tracer attached");

  Rng rng(seed);
  graph::CommGraph app = graph::Mesh2D(4, std::max(2, nodes / 4));
  const int n = app.num_nodes();
  deploy::CostMatrix costs = RandomCosts(std::max(instances, n + 4), rng);
  auto eval = deploy::CostEvaluator::Create(&app, &costs,
                                            deploy::Objective::kLongestLink);
  CLOUDIA_CHECK(eval.ok());
  deploy::Deployment d(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) d[static_cast<size_t>(i)] = i;
  const double base_cost = eval->Cost(d);

  // -- Disabled-path overhead ------------------------------------------------
  // The loop the instrumented solvers actually run: delta-evaluate a swap,
  // and (in the instrumented variant) tick a detached counter + check a null
  // tracer -- the exact disabled-path cost of the call sites added in
  // src/deploy, src/hier, and src/service.
  volatile double sink = 0.0;
  auto bare = [&] {
    double acc = 0.0;
    for (long long i = 0; i < iters; ++i) {
      const int a = static_cast<int>(i % n);
      const int b = static_cast<int>((i * 7 + 1) % n);
      acc += eval->SwapDelta(d, base_cost, a, b);
    }
    sink = acc;
  };
  obs::Counter detached_counter;  // no registry: the no-op path
  obs::Tracer* null_tracer = nullptr;
  auto instrumented = [&] {
    double acc = 0.0;
    for (long long i = 0; i < iters; ++i) {
      const int a = static_cast<int>(i % n);
      const int b = static_cast<int>((i * 7 + 1) % n);
      acc += eval->SwapDelta(d, base_cost, a, b);
      detached_counter.Add();
      if (null_tracer != nullptr) {
        null_tracer->Instant("never", "bench", 0);
      }
    }
    sink = acc;
  };
  bare();          // warm caches before timing either variant
  instrumented();
  // Interleave reps so CPU-frequency drift hits both variants equally;
  // min-of-reps then discards the slow outliers on each side.
  double bare_s = 1e100;
  double instrumented_s = 1e100;
  for (int r = 0; r < reps; ++r) {
    bare_s = std::min(bare_s, MinSeconds(1, bare));
    instrumented_s = std::min(instrumented_s, MinSeconds(1, instrumented));
  }
  const double disabled_ratio = instrumented_s / bare_s;
  std::printf("hot loop: %lld swap-delta evaluations, min of %d reps\n", iters, reps);
  std::printf("  bare          : %8.3f ms\n", bare_s * 1e3);
  std::printf("  disabled obs  : %8.3f ms  (ratio %.4f)\n",
              instrumented_s * 1e3, disabled_ratio);

  // -- Enabled-path cost (informational) -------------------------------------
  obs::MetricsRegistry registry;
  obs::Counter live_counter = registry.counter("bench.ticks");
  const long long counter_iters = std::max(1LL, iters / 4);
  const double counter_s = MinSeconds(reps, [&] {
    for (long long i = 0; i < counter_iters; ++i) live_counter.Add();
  });
  const double counter_ns =
      counter_s / static_cast<double>(counter_iters) * 1e9;
  obs::Tracer tracer;
  const int span_iters = 20000;
  const double span_s = MinSeconds(reps, [&] {
    for (int i = 0; i < span_iters; ++i) {
      obs::Span span(&tracer, "bench", "bench");
    }
  });
  const double span_ns = span_s / span_iters * 1e9;
  std::printf("enabled path: counter add %.1f ns, span begin+end %.0f ns "
              "(mutexed; spans are for stages, not inner loops)\n",
              counter_ns, span_ns);

  // -- Bit-identity under tracing --------------------------------------------
  deploy::NdpSolveOptions sopts;
  sopts.objective = deploy::Objective::kLongestLink;
  sopts.threads = 1;
  sopts.seed = seed;
  sopts.time_budget_s = 5.0;

  deploy::SolveContext plain_context(Deadline::After(10.0));
  plain_context.set_max_threads(1);
  auto plain = deploy::SolveNodeDeploymentByName(app, costs, "local", sopts,
                                                 plain_context);
  CLOUDIA_CHECK(plain.ok());

  obs::Tracer solve_tracer;
  deploy::SolveContext traced_context(Deadline::After(10.0));
  traced_context.set_max_threads(1);
  traced_context.set_obs(&solve_tracer, 0, "local");
  auto traced = deploy::SolveNodeDeploymentByName(app, costs, "local", sopts,
                                                  traced_context);
  CLOUDIA_CHECK(traced.ok());

  const bool bit_identical = plain->cost == traced->cost &&
                             plain->deployment == traced->deployment &&
                             plain->iterations == traced->iterations;
  std::printf("traced solve: cost %.6f vs %.6f, %s (%zu trace events)\n",
              plain->cost, traced->cost,
              bit_identical ? "bit-identical" : "DIVERGED",
              solve_tracer.event_count());

  const bool pass = disabled_ratio < 1.01 && bit_identical;
  std::printf("overall: %s (disabled ratio %.4f < 1.01, outputs %s)\n",
              pass ? "PASS" : "FAIL", disabled_ratio,
              bit_identical ? "identical" : "diverged");

  if (!json.empty()) {
    std::vector<bench::Metric> metrics;
    metrics.push_back({"obs.disabled_ratio", disabled_ratio, "ratio",
                       "lower"});
    metrics.push_back({"obs.bit_identical", bit_identical ? 1.0 : 0.0, "bool",
                       "near"});
    metrics.push_back({"obs.enabled_counter_ns", counter_ns, "ns", ""});
    metrics.push_back({"obs.enabled_span_ns", span_ns, "ns", ""});
    if (!bench::WriteMetricsJson(json, "bench_obs_overhead", metrics)) {
      return 1;
    }
  }
  return pass ? 0 : 1;
}
