// Fig. 9: convergence of the LPNDP MIP solver with k = 5, k = 20, and no
// cost clustering -- clustering does not help because path costs are sums.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "deploy/mip_lpndp.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 9: LPNDP-MIP convergence vs cost clustering",
      "k=5 performs poorly; clustering does not improve LPNDP (costs are "
      "aggregated by summation along paths)",
      "aggregation tree (depth <= 4) of 45 nodes on 50 instances");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/9, /*n=*/50);
  deploy::CostMatrix costs = bench::MeasuredMeanCosts(
      fx.cloud, fx.instances, bench::ScaledSeconds(150, 8), 99);
  // Depth-4 tree: 1 + 3 + 9 + 27 = 40 nodes (within the 45-node budget).
  graph::CommGraph tree = graph::AggregationTree(3, 4);
  const double budget = bench::ScaledSeconds(16 * 60, 5);

  TextTable t({"clusters", "time[s]", "longest-path latency[ms]"});
  for (int k : {5, 20, 0}) {
    deploy::MipNdpOptions opts;
    opts.cost_clusters = k;
    opts.deadline = Deadline::After(budget);
    opts.seed = 23;
    auto r = deploy::SolveLpndpMip(tree, costs, opts);
    CLOUDIA_CHECK(r.ok());
    std::string label = k == 0 ? "none" : StrFormat("k=%d", k);
    for (const deploy::TracePoint& p : r->trace) {
      t.AddRow({label, StrFormat("%.2f", p.seconds),
                StrFormat("%.4f", p.cost)});
    }
    std::printf("[%s] final cost %.4f ms (B&B nodes: %lld)\n", label.c_str(),
                r->cost, static_cast<long long>(r->iterations));
  }
  std::printf("\nconvergence traces:\n%s", t.ToString().c_str());
  return 0;
}
