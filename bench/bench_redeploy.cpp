// Objective retention under drift: static one-shot deployment vs monitored
// redeployment at several migration budgets K.
//
// ClouDiA's contract ends at deployment time, but its own stability data
// (Figs. 2/19/21) shows pairwise latencies drifting over hours. This bench
// plays a drifting scenario (congestion episodes + VM relocation overlaid on
// the EC2 profile) against the same initial deployment twice:
//
//   * static (K=0): deploy once, never move -- the paper's model. The
//     ground-truth objective decays as the network shifts under it.
//   * monitored (K>0): redeploy::DriftMonitor re-probes a sampled link
//     subset each check; when drift is statistically significant the pool
//     is re-measured and redeploy::MigrationPlanner moves at most K nodes.
//
// Scoring uses the simulator's *ground truth* (expected RTT matrix at each
// check time), never the monitor's own estimates, so the comparison cannot
// be gamed by measurement error. PASS requires monitored redeployment to
// retain a strictly better mean objective than static for at least one
// K > 0, and the whole scenario to repeat bit-identically (exit 1 on FAIL).
//
// Flags: --nodes=N (default 30), --instances=N (default nodes+10%),
// --checks=N (default 12), --interval=S (virtual, default 1800),
// --duration=S (baseline measurement, default 30), --seed=N (default 7),
// --skip-determinism, --json=PATH (unified metrics, see bench_util.h).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "deploy/solve.h"
#include "graph/templates.h"
#include "measure/probe_engine.h"
#include "measure/protocols.h"
#include "netsim/cloud.h"
#include "netsim/dynamics.h"
#include "netsim/provider.h"
#include "redeploy/online.h"

namespace {

using namespace cloudia;

struct Scenario {
  net::CloudSimulator cloud;
  std::vector<net::Instance> pool;
  deploy::CostMatrix baseline;
  deploy::Deployment initial;
  net::DynamicsConfig drift;
};

struct RetentionCurve {
  int k = 0;
  int escalations = 0;
  int remeasures = 0;
  int migrations = 0;
  std::vector<double> true_cost;  ///< ground-truth objective per check
  deploy::Deployment final_deployment;
  double mean_true_cost() const {
    double sum = 0.0;
    for (double c : true_cost) sum += c;
    return true_cost.empty() ? 0.0
                             : sum / static_cast<double>(true_cost.size());
  }
};

// Ground-truth objective of `d` at virtual time `t_hours`: the simulator's
// expected RTT matrix (with dynamics), not anyone's measurement of it.
double TrueCost(const net::CloudSimulator& cloud,
                const std::vector<net::Instance>& pool,
                const graph::CommGraph& app, const deploy::Deployment& d,
                double t_hours) {
  auto rows = cloud.ExpectedRttMatrix(pool, net::kDefaultProbeBytes, t_hours);
  auto costs = deploy::CostMatrix::FromRows(rows);
  CLOUDIA_CHECK(costs.ok());
  return deploy::LongestLinkCost(app, d, *costs);
}

Scenario BuildScenario(int instances, double duration_s, uint64_t seed,
                       const graph::CommGraph& app) {
  Scenario s{net::CloudSimulator(net::AmazonEc2Profile(), seed),
             {},
             {},
             {},
             {}};
  auto pool = s.cloud.Allocate(instances);
  CLOUDIA_CHECK(pool.ok());
  s.pool = std::move(pool).value();

  measure::ProtocolOptions popts;
  popts.seed = measure::MeasurementProtocolSeed(seed);
  popts.duration_s = duration_s;
  auto measured =
      measure::RunProtocol(s.cloud, s.pool, measure::Protocol::kStaged, popts);
  CLOUDIA_CHECK(measured.ok());
  auto baseline =
      measure::BuildCostMatrix(*measured, measure::CostMetric::kMean);
  CLOUDIA_CHECK(baseline.ok());
  s.baseline = std::move(baseline).value();

  deploy::NdpSolveOptions sopts;
  sopts.seed = seed;
  sopts.threads = 1;
  deploy::SolveContext context(Deadline::After(10.0));
  context.set_max_threads(1);
  auto solved =
      deploy::SolveNodeDeploymentByName(app, s.baseline, "local", sopts,
                                        context);
  CLOUDIA_CHECK(solved.ok());
  s.initial = std::move(solved->deployment);

  // The drift scenario: frequent multi-hour congestion episodes plus
  // occasional provider-side relocation, anchored after the baseline
  // measurement so the cached matrix is honest at t = start.
  s.drift.start_hours = measured->virtual_time_ms / 3.6e6;
  s.drift.epoch_minutes = 30.0;
  s.drift.episode_rate = 0.35;
  s.drift.severity_lo = 2.0;
  s.drift.severity_hi = 3.2;
  s.drift.recovery_per_epoch = 0.1;
  s.drift.relocation_window_hours = 1.0;
  s.drift.relocation_prob = 0.1;
  s.drift.seed = seed + 1;
  return s;
}

RetentionCurve RunMonitored(Scenario& s, const graph::CommGraph& app, int k,
                            int checks, double interval_s, uint64_t seed) {
  net::NetworkDynamics dynamics(s.drift, &s.cloud.topology());
  s.cloud.AttachDynamics(&dynamics);

  redeploy::OnlineOptions online;
  online.monitor.seed = seed + 17;
  online.planner.max_migrations = k;
  online.planner.time_budget_s = 10.0;
  online.start_t_hours = s.drift.start_hours;
  online.check_interval_s = interval_s;
  online.checks = checks;
  online.measure_seed = seed;
  auto outcome = redeploy::RunOnlineRedeployment(s.cloud, s.pool, app,
                                                 s.baseline, s.initial,
                                                 online);
  CLOUDIA_CHECK(outcome.ok());

  // Replay the check trajectory against ground truth: the deployment in
  // force at each check is the initial one until a check's applied plan
  // changes it.
  RetentionCurve curve;
  curve.k = k;
  curve.escalations = outcome->escalations;
  curve.remeasures = outcome->remeasures;
  curve.migrations = outcome->migrations;
  deploy::Deployment current = s.initial;
  for (const redeploy::OnlineCheckRecord& record : outcome->records) {
    if (record.remeasured && !record.plan.target.empty()) {
      current = record.plan.target;
    }
    curve.true_cost.push_back(
        TrueCost(s.cloud, s.pool, app, current, record.check.t_hours));
  }
  curve.final_deployment = std::move(outcome->final_deployment);
  s.cloud.AttachDynamics(nullptr);
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  CLOUDIA_CHECK(flags.ok());
  auto nodes = flags->GetInt("nodes", 30);
  auto instances_flag = flags->GetInt("instances", 0);
  auto checks = flags->GetInt("checks", 12);
  auto interval = flags->GetDouble("interval", 1800.0);
  auto duration = flags->GetDouble("duration", 30.0);
  auto seed = flags->GetInt("seed", 7);
  CLOUDIA_CHECK(nodes.ok() && instances_flag.ok() && checks.ok() &&
                interval.ok() && duration.ok() && seed.ok());
  const bool skip_determinism = flags->GetBool("skip-determinism", false);
  const int n = static_cast<int>(*nodes);
  const int instances =
      *instances_flag > 0 ? static_cast<int>(*instances_flag)
                          : n + std::max(1, n / 10);

  int rows = 1;
  for (int r = 2; r * r <= n; ++r) {
    if (n % r == 0) rows = r;
  }
  graph::CommGraph app = graph::Mesh2D(rows, n / rows);

  std::printf(
      "objective retention under drift: %d-node mesh on %d EC2 instances\n"
      "(baseline: staged protocol, %.0f virtual s; drift: congestion "
      "episodes + relocation;\n %lld checks every %.0f virtual s; ground-truth "
      "scoring)\n\n",
      n, instances, *duration, static_cast<long long>(*checks), *interval);

  const std::vector<int> budgets = {0, 2, 4, n};
  auto run_all = [&] {
    std::vector<RetentionCurve> curves;
    Scenario s = BuildScenario(instances, *duration,
                               static_cast<uint64_t>(*seed), app);
    for (int k : budgets) {
      curves.push_back(RunMonitored(s, app, k, static_cast<int>(*checks),
                                    *interval, static_cast<uint64_t>(*seed)));
    }
    return curves;
  };

  Stopwatch wall;
  std::vector<RetentionCurve> curves = run_all();
  const double static_mean = curves[0].mean_true_cost();
  const double static_final = curves[0].true_cost.back();

  std::printf(
      "   K   escalations  remeasures  migrations   mean true cost   final "
      "true cost   vs static\n");
  bool any_better = false;
  for (const RetentionCurve& curve : curves) {
    const double mean = curve.mean_true_cost();
    const double saved =
        static_mean > 0 ? 100.0 * (static_mean - mean) / static_mean : 0.0;
    if (curve.k > 0 && mean < static_mean) any_better = true;
    std::printf(
        "%4d%s %10d %11d %11d %14.4f ms %14.4f ms %+9.1f%%\n", curve.k,
        curve.k == 0 ? " (static)" : "         ", curve.escalations,
        curve.remeasures, curve.migrations, mean, curve.true_cost.back(),
        saved);
  }
  std::printf("\nstatic deployment decay over the horizon: %.4f ms (first "
              "check) -> %.4f ms (last)\n",
              curves[0].true_cost.front(), static_final);
  std::printf("monitored redeployment beats static for some K > 0: %s\n",
              any_better ? "PASS" : "FAIL");

  bool deterministic = true;
  if (!skip_determinism) {
    std::vector<RetentionCurve> repeat = run_all();
    for (size_t i = 0; i < curves.size(); ++i) {
      deterministic = deterministic &&
                      curves[i].true_cost == repeat[i].true_cost &&
                      curves[i].final_deployment ==
                          repeat[i].final_deployment &&
                      curves[i].migrations == repeat[i].migrations;
    }
    std::printf("repeat run bit-identical: %s\n",
                deterministic ? "PASS" : "FAIL");
  }
  const bool pass = any_better && deterministic;
  const std::string json_path = flags->GetString("json", "");
  if (!json_path.empty()) {
    // Gated: retention ratios per budget (deterministic replay of a seeded
    // scenario -- "near"), the PASS indicators. Informational: wall time.
    std::vector<bench::Metric> metrics;
    for (const RetentionCurve& curve : curves) {
      const std::string base = "redeploy.k" + std::to_string(curve.k) + ".";
      const double mean = curve.mean_true_cost();
      metrics.push_back({base + "mean_true_cost", mean, "ms", ""});
      metrics.push_back({base + "retention",
                         static_mean > 0 ? mean / static_mean : 1.0, "x",
                         curve.k == 0 ? "" : "lower"});
      metrics.push_back({base + "migrations",
                         static_cast<double>(curve.migrations), "", "near"});
    }
    metrics.push_back({"redeploy.any_better", any_better ? 1.0 : 0.0, "bool",
                       "near"});
    metrics.push_back({"redeploy.deterministic", deterministic ? 1.0 : 0.0,
                       "bool", "near"});
    metrics.push_back({"redeploy.wall", wall.ElapsedSeconds(), "s", ""});
    if (bench::WriteMetricsJson(json_path, "bench_redeploy", metrics)) {
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  std::printf("\nwall time: %.2f s\noverall: %s\n", wall.ElapsedSeconds(),
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
