// Multi-objective placement: the Pareto frontier over (latency, $/hour,
// migrations) on an over-allocated EC2 pool.
//
// The paper optimizes latency alone; Fig. 13 already shows the hidden
// second axis -- over-allocating instances buys latency at a price. This
// bench makes the trade-off explicit: SolveParetoFrontier sweeps weight
// vectors over the solver stack and returns the non-dominated menu of
// deployments. PASS (exit 0) requires:
//
//   * every frontier point is a valid deployment and no frontier point
//     dominates another (mutual non-dominance);
//   * the frontier covers both single-objective incumbents -- a pure-latency
//     solve and a price-dominant solve, each run independently with the
//     same method and budget slice, must be weakly dominated (or matched)
//     by some frontier point;
//   * the whole frontier repeats bit-identically at --threads=1.
//
// The Fig. 13 slice: the frontier is recomputed at 0% / 25% / 50%
// over-allocation; the minimum-latency point improves (or holds) as the
// pool grows while its price column shows what the improvement costs.
//
// Flags: --nodes=N (default 16), --budget=S (total per frontier, default 5),
// --threads=N (default 1), --seed=N (default 7), --skip-determinism,
// --json=PATH (unified metrics, see bench_util.h).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "deploy/pareto.h"
#include "graph/templates.h"
#include "netsim/provider.h"

namespace {

using namespace cloudia;

struct FrontierRun {
  deploy::ParetoFrontier frontier;
  deploy::Deployment latency_incumbent;
  deploy::Deployment price_incumbent;
};

// The base spec for one pool: EC2 prices per instance, identity reference
// (the default placement node i -> instance i), weights installed per sweep
// point by SolveParetoFrontier.
deploy::ParetoOptions MakeOptions(const std::vector<double>& prices, int n,
                                  double budget_s, int threads,
                                  uint64_t seed) {
  deploy::ParetoOptions popts;
  popts.method = "portfolio";
  // Deterministic members only: g2 is closed-form, local runs a fixed
  // restart schedule -- with a sufficient budget slice neither depends on
  // wall time, so the sweep is bit-reproducible at threads = 1.
  popts.solve.portfolio_members = {"g2", "local"};
  popts.solve.time_budget_s = budget_s;
  popts.solve.threads = threads;
  popts.solve.seed = seed;
  popts.solve.objective.instance_prices = prices;
  popts.solve.objective.reference.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    popts.solve.objective.reference[static_cast<size_t>(i)] = i;
  }
  // Start from the reference so migration-weighted sweeps can stay home.
  popts.solve.initial = popts.solve.objective.reference;
  return popts;
}

deploy::ParetoPoint PricePoint(const deploy::ParetoOptions& popts,
                               const graph::CommGraph& graph,
                               const deploy::CostMatrix& costs,
                               deploy::Deployment d) {
  deploy::ParetoPoint p;
  auto eval = deploy::CostEvaluator::Create(
      &graph, &costs, popts.solve.objective.primary);
  CLOUDIA_CHECK(eval.ok());
  p.latency_ms = eval->LatencyCost(d);
  p.price_per_hour = 0.0;
  for (int inst : d) {
    p.price_per_hour +=
        popts.solve.objective.instance_prices[static_cast<size_t>(inst)];
  }
  p.migrations = 0;
  for (size_t v = 0; v < d.size(); ++v) {
    p.migrations += d[v] != popts.solve.objective.reference[v] ? 1 : 0;
  }
  p.deployment = std::move(d);
  return p;
}

// One single-objective incumbent: the same method, seed, and budget slice
// the sweep gives each weight vector, so the comparison is apples to apples.
deploy::Deployment SolveIncumbent(const deploy::ParetoOptions& popts,
                                  const graph::CommGraph& graph,
                                  const deploy::CostMatrix& costs,
                                  double price_weight, double slice_s) {
  deploy::NdpSolveOptions sopts = popts.solve;
  sopts.objective.price_weight = price_weight;
  sopts.objective.migration_weight = 0.0;
  deploy::SolveContext context(Deadline::After(slice_s));
  context.set_max_threads(sopts.threads);
  auto solved = deploy::SolveNodeDeploymentByName(graph, costs, popts.method,
                                                  sopts, context);
  CLOUDIA_CHECK(solved.ok());
  return std::move(solved->deployment);
}

FrontierRun RunFrontier(const deploy::ParetoOptions& popts,
                        const graph::CommGraph& graph,
                        const deploy::CostMatrix& costs) {
  FrontierRun run;
  auto frontier = deploy::SolveParetoFrontier(graph, costs, popts);
  CLOUDIA_CHECK(frontier.ok());
  run.frontier = std::move(frontier).value();

  // The default sweep sizes its budget as total / (1 + 5 + 3 + 1) slices
  // (anchor, price alphas, migration alphas, mixed); give the incumbents
  // the same slice.
  const double slice_s = popts.solve.time_budget_s / 10.0;
  run.latency_incumbent =
      SolveIncumbent(popts, graph, costs, /*price_weight=*/0.0, slice_s);
  // Price-dominant: weigh a dollar per hour at 1000x the latency scale so
  // the solve is effectively "cheapest valid placement".
  auto anchor = PricePoint(popts, graph, costs, run.latency_incumbent);
  const double dominant =
      1000.0 * anchor.latency_ms / std::max(anchor.price_per_hour, 1e-9);
  run.price_incumbent =
      SolveIncumbent(popts, graph, costs, dominant, slice_s);
  return run;
}

bool WeaklyCovered(const deploy::ParetoFrontier& frontier,
                   const deploy::ParetoPoint& incumbent) {
  for (const deploy::ParetoPoint& p : frontier.points) {
    const bool leq = p.latency_ms <= incumbent.latency_ms &&
                     p.price_per_hour <= incumbent.price_per_hour &&
                     p.migrations <= incumbent.migrations;
    if (leq) return true;
  }
  return false;
}

// 2-D (latency, price) hypervolume proxy: the area weakly dominated by the
// frontier below a reference point set 5% beyond the frontier's own worst
// corner. Higher = a frontier that pushes further into the trade-off space.
double Hypervolume2D(const std::vector<deploy::ParetoPoint>& points) {
  if (points.empty()) return 0.0;
  double ref_latency = 0.0, ref_price = 0.0;
  for (const deploy::ParetoPoint& p : points) {
    ref_latency = std::max(ref_latency, p.latency_ms);
    ref_price = std::max(ref_price, p.price_per_hour);
  }
  ref_latency *= 1.05;
  ref_price *= 1.05;
  // Points arrive sorted by ascending latency; walk them keeping the
  // running price minimum (the 2-D staircase).
  double hv = 0.0;
  double best_price = ref_price;
  double prev_latency = 0.0;
  bool first = true;
  for (const deploy::ParetoPoint& p : points) {
    if (first) {
      prev_latency = p.latency_ms;
      first = false;
    } else if (p.latency_ms > prev_latency) {
      hv += (p.latency_ms - prev_latency) * (ref_price - best_price);
      prev_latency = p.latency_ms;
    }
    best_price = std::min(best_price, p.price_per_hour);
  }
  hv += (ref_latency - prev_latency) * (ref_price - best_price);
  return hv;
}

bool SameFrontier(const deploy::ParetoFrontier& a,
                  const deploy::ParetoFrontier& b) {
  if (a.points.size() != b.points.size()) return false;
  for (size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].deployment != b.points[i].deployment ||
        a.points[i].latency_ms != b.points[i].latency_ms ||
        a.points[i].price_per_hour != b.points[i].price_per_hour ||
        a.points[i].migrations != b.points[i].migrations) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  CLOUDIA_CHECK(flags.ok());
  auto nodes = flags->GetInt("nodes", 16);
  auto budget = flags->GetDouble("budget", 5.0);
  auto threads = flags->GetInt("threads", 1);
  auto seed = flags->GetInt("seed", 7);
  CLOUDIA_CHECK(nodes.ok() && budget.ok() && threads.ok() && seed.ok());
  const bool skip_determinism = flags->GetBool("skip-determinism", false);
  const int n = static_cast<int>(*nodes);

  int rows = 1;
  for (int r = 2; r * r <= n; ++r) {
    if (n % r == 0) rows = r;
  }
  graph::CommGraph app = graph::Mesh2D(rows, n / rows);

  // 50% over-allocated pool; the Fig. 13 slice re-runs on prefixes.
  const int pool_size = n + n / 2;
  bench::CloudFixture fx(net::AmazonEc2Profile(),
                         static_cast<uint64_t>(*seed), pool_size);

  std::printf(
      "pareto frontier over (latency, $/hour, migrations): %d-node mesh,\n"
      "EC2 pool of %d (50%% over-allocated), price model per host, identity "
      "reference\n\n",
      n, pool_size);

  Stopwatch wall;
  auto frontier_at = [&](int used) {
    std::vector<net::Instance> subset(fx.instances.begin(),
                                      fx.instances.begin() + used);
    deploy::CostMatrix costs = bench::MeasuredMeanCosts(
        fx.cloud, subset, /*virtual_s=*/60.0, static_cast<uint64_t>(*seed));
    std::vector<double> prices = fx.cloud.InstancePrices(subset);
    deploy::ParetoOptions popts =
        MakeOptions(prices, n, *budget, static_cast<int>(*threads),
                    static_cast<uint64_t>(*seed));
    return std::make_tuple(RunFrontier(popts, app, costs), popts, costs);
  };

  auto [main_run, main_popts, main_costs] = frontier_at(pool_size);
  const deploy::ParetoFrontier& frontier = main_run.frontier;

  std::printf("  latency[ms]   price[$/h]  migrations   (price_w, migr_w)\n");
  for (const deploy::ParetoPoint& p : frontier.points) {
    std::printf("%12.4f %12.4f %11d   (%.4g, %.4g)\n", p.latency_ms,
                p.price_per_hour, p.migrations, p.weights.price_weight,
                p.weights.migration_weight);
  }
  std::printf("\nsolves %d, duplicates dropped %d, dominated dropped %d\n",
              frontier.solves, frontier.duplicates_dropped,
              frontier.dominated_dropped);

  // -- Invariant 1: validity + mutual non-dominance --------------------------
  bool valid = !frontier.points.empty();
  for (const deploy::ParetoPoint& p : frontier.points) {
    valid = valid && deploy::ValidateDeployment(
                         app, p.deployment, main_costs,
                         main_popts.solve.objective.primary)
                         .ok();
  }
  for (const deploy::ParetoPoint& a : frontier.points) {
    for (const deploy::ParetoPoint& b : frontier.points) {
      if (&a != &b && deploy::ParetoDominates(a, b)) valid = false;
    }
  }
  std::printf("frontier valid + mutually non-dominated: %s\n",
              valid ? "PASS" : "FAIL");

  // -- Invariant 2: covers both single-objective incumbents ------------------
  const deploy::ParetoPoint latency_inc =
      PricePoint(main_popts, app, main_costs, main_run.latency_incumbent);
  const deploy::ParetoPoint price_inc =
      PricePoint(main_popts, app, main_costs, main_run.price_incumbent);
  const bool covers = WeaklyCovered(frontier, latency_inc) &&
                      WeaklyCovered(frontier, price_inc);
  std::printf(
      "latency incumbent (%.4f ms, %.4f $/h, %d moves) covered; price\n"
      "incumbent (%.4f ms, %.4f $/h, %d moves) covered: %s\n",
      latency_inc.latency_ms, latency_inc.price_per_hour,
      latency_inc.migrations, price_inc.latency_ms, price_inc.price_per_hour,
      price_inc.migrations, covers ? "PASS" : "FAIL");

  // -- Fig. 13 slice: min-latency point vs over-allocation -------------------
  std::printf("\nFig. 13 slice (min-latency frontier point per pool):\n");
  std::printf("  over-allocation   latency[ms]   price[$/h]\n");
  std::vector<std::pair<int, deploy::ParetoPoint>> slice;
  for (int pct : {0, 25, 50}) {
    const int used = n + n * pct / 100;
    deploy::ParetoPoint best;
    if (pct == 50) {
      best = frontier.points.front();  // sorted by latency
    } else {
      auto [run, popts, costs] = frontier_at(used);
      (void)popts;
      (void)costs;
      CLOUDIA_CHECK(!run.frontier.points.empty());
      best = run.frontier.points.front();
    }
    std::printf("          %3d %%  %12.4f %12.4f\n", pct, best.latency_ms,
                best.price_per_hour);
    slice.emplace_back(pct, best);
  }

  // -- Invariant 3: bit-determinism ------------------------------------------
  bool deterministic = true;
  if (!skip_determinism) {
    auto [repeat, rpopts, rcosts] = frontier_at(pool_size);
    (void)rpopts;
    (void)rcosts;
    deterministic = SameFrontier(frontier, repeat.frontier) &&
                    repeat.latency_incumbent == main_run.latency_incumbent &&
                    repeat.price_incumbent == main_run.price_incumbent;
    std::printf("\nrepeat run bit-identical: %s\n",
                deterministic ? "PASS" : "FAIL");
  }

  const bool pass = valid && covers && deterministic;
  const double hv = Hypervolume2D(frontier.points);
  const int dominance_count =
      frontier.duplicates_dropped + frontier.dominated_dropped;

  const std::string json_path = flags->GetString("json", "");
  if (!json_path.empty()) {
    std::vector<bench::Metric> metrics;
    metrics.push_back({"pareto.hypervolume", hv, "ms*$/h", "higher"});
    metrics.push_back({"pareto.dominance_count",
                       static_cast<double>(dominance_count), "", "higher"});
    metrics.push_back({"pareto.frontier_size",
                       static_cast<double>(frontier.points.size()), "",
                       "near"});
    metrics.push_back(
        {"pareto.covers_incumbents", covers ? 1.0 : 0.0, "bool", "near"});
    metrics.push_back(
        {"pareto.deterministic", deterministic ? 1.0 : 0.0, "bool", "near"});
    for (const auto& [pct, best] : slice) {
      const std::string base = "pareto.oa" + std::to_string(pct) + ".";
      metrics.push_back({base + "latency", best.latency_ms, "ms", "near"});
      metrics.push_back({base + "price", best.price_per_hour, "$/h", ""});
    }
    metrics.push_back({"pareto.pass", pass ? 1.0 : 0.0, "bool", "near"});
    metrics.push_back({"pareto.wall", wall.ElapsedSeconds(), "s", ""});
    if (bench::WriteMetricsJson(json_path, "bench_pareto_frontier", metrics)) {
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  std::printf("\nwall time: %.2f s\noverall: %s\n", wall.ElapsedSeconds(),
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
