// Fig. 6: convergence of the CP solver for LLNDP with different numbers of
// cost clusters (k = 5, k = 20, no clustering).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "deploy/cp_llndp.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 6: LLNDP-CP convergence vs number of cost clusters",
      "k=20 converges faster than no clustering (2 min vs 16 min to best); "
      "k=5 is coarse and gets stuck at a worse cost (0.81 vs 0.55 ms)",
      "2-D mesh of 90 nodes on 100 instances, staged mean-latency costs");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/6, /*n=*/100);
  deploy::CostMatrix costs = bench::MeasuredMeanCosts(
      fx.cloud, fx.instances, bench::ScaledSeconds(300, 10), 66);
  graph::CommGraph mesh = graph::Mesh2D(9, 10);  // 90 nodes
  const double budget = bench::ScaledSeconds(16 * 60, 5);

  TextTable t({"clusters", "time[s]", "longest-link latency[ms]"});
  for (int k : {5, 20, 0}) {
    deploy::CpLlndpOptions opts;
    opts.cost_clusters = k;
    opts.deadline = Deadline::After(budget);
    opts.seed = 17;
    auto r = deploy::SolveLlndpCp(mesh, costs, opts);
    CLOUDIA_CHECK(r.ok());
    std::string label = k == 0 ? "none" : StrFormat("k=%d", k);
    for (const deploy::TracePoint& p : r->trace) {
      t.AddRow({label, StrFormat("%.2f", p.seconds),
                StrFormat("%.4f", p.cost)});
    }
    std::printf("[%s] final cost %.4f ms, %lld thresholds, optimal=%s\n",
                label.c_str(), r->cost, static_cast<long long>(r->iterations),
                r->proven_optimal ? "yes" : "no");
  }
  std::printf("\nconvergence traces (best cost over time):\n%s",
              t.ToString().c_str());
  return 0;
}
