// Fig. 15: lightweight approaches vs MIP for LPNDP over 20 allocations of 50
// instances, plus the paper's side experiment: at 15 instances the MIP
// proves optimality while R2 misses it on a good fraction of allocations.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/table.h"
#include "deploy/solve.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 15: lightweight approaches vs MIP (LPNDP)",
      "G1/G2 (LLNDP heuristics) comparable to R1; R2 finds deployments "
      "~5.1% better than MIP under the same budget; at 15 instances MIP is "
      "optimal while R2 is suboptimal on 40% of allocations",
      "20 allocations x 50 instances, depth-4 aggregation tree");

  const double budget = bench::ScaledSeconds(7.5 * 60, 3);
  const int allocations = 20;
  graph::CommGraph tree = graph::AggregationTree(3, 4);  // 40 nodes

  std::map<deploy::Method, double> total;
  const deploy::Method methods[] = {
      deploy::Method::kGreedyG1, deploy::Method::kGreedyG2,
      deploy::Method::kRandomR1, deploy::Method::kRandomR2,
      deploy::Method::kMip};

  for (int a = 0; a < allocations; ++a) {
    bench::CloudFixture fx(net::AmazonEc2Profile(),
                           /*seed=*/1500 + static_cast<uint64_t>(a), 50);
    deploy::CostMatrix costs = bench::MeasuredMeanCosts(
        fx.cloud, fx.instances, bench::ScaledSeconds(150, 5),
        9500 + static_cast<uint64_t>(a));
    for (deploy::Method method : methods) {
      deploy::NdpSolveOptions opts;
      opts.objective = deploy::Objective::kLongestPath;
      opts.method = method;
      opts.time_budget_s = budget;
      opts.cost_clusters = 0;  // paper: no clustering for LPNDP
      opts.r1_samples = 1000;
      opts.seed = static_cast<uint64_t>(a) * 37 + 11;
      auto r = deploy::SolveNodeDeployment(tree, costs, opts);
      CLOUDIA_CHECK(r.ok());
      total[method] += r->cost;
    }
    std::printf("allocation %2d done\n", a + 1);
  }

  TextTable t({"method", "avg longest-path latency[ms]", "vs MIP[%]"});
  double mip_avg = total[deploy::Method::kMip] / allocations;
  for (deploy::Method method : methods) {
    double avg = total[method] / allocations;
    t.AddRow({deploy::MethodName(method), StrFormat("%.4f", avg),
              StrFormat("%+.2f", 100.0 * (avg - mip_avg) / mip_avg)});
  }
  std::printf("\n%s", t.ToString().c_str());

  // Side experiment: 15 instances, small tree; MIP runs to optimality.
  std::printf("\n15-instance side experiment (MIP optimality check):\n");
  graph::CommGraph small_tree = graph::AggregationTree(2, 4);  // 15 nodes
  int mip_optimal = 0, r2_suboptimal = 0;
  const int small_allocs = 10;
  for (int a = 0; a < small_allocs; ++a) {
    bench::CloudFixture fx(net::AmazonEc2Profile(),
                           /*seed=*/1550 + static_cast<uint64_t>(a), 15);
    deploy::CostMatrix costs = bench::MeasuredMeanCosts(
        fx.cloud, fx.instances, bench::ScaledSeconds(60, 4),
        9700 + static_cast<uint64_t>(a));
    deploy::NdpSolveOptions opts;
    opts.objective = deploy::Objective::kLongestPath;
    opts.method = deploy::Method::kMip;
    opts.time_budget_s = std::min(budget, 6.0);
    opts.seed = static_cast<uint64_t>(a);
    auto mip = deploy::SolveNodeDeployment(small_tree, costs, opts);
    opts.method = deploy::Method::kRandomR2;
    auto r2 = deploy::SolveNodeDeployment(small_tree, costs, opts);
    CLOUDIA_CHECK(mip.ok() && r2.ok());
    mip_optimal += mip->proven_optimal ? 1 : 0;
    r2_suboptimal += (r2->cost > mip->cost + 1e-9) ? 1 : 0;
  }
  std::printf("  MIP proved optimality on %d/%d allocations\n", mip_optimal,
              small_allocs);
  std::printf("  R2 was suboptimal on %d/%d allocations (paper: 40%%)\n",
              r2_suboptimal, small_allocs);
  return 0;
}
