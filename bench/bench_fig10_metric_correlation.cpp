// Fig. 10: correlation between latency cost metrics -- per link, mean vs
// mean+SD and mean vs 99th percentile. They correlate, but imperfectly.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 10: correlation between cost metrics (per-link scatter)",
      "links with larger means tend to have larger mean+SD / 99% values, "
      "but the metrics are not perfectly correlated (99% reaches ~12 ms "
      "while means stay under ~0.5 ms)",
      "one 110-instance allocation, staged measurement, all ordered links");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/10, /*n=*/110);
  measure::ProtocolOptions opts;
  opts.duration_s = bench::ScaledSeconds(330, 20);
  opts.seed = 110;
  auto m = measure::RunStaged(fx.cloud, fx.instances, opts);
  CLOUDIA_CHECK(m.ok());

  std::vector<double> mean, mean_sd, p99;
  for (int i = 0; i < 110; ++i) {
    for (int j = 0; j < 110; ++j) {
      if (i == j || m->Link(i, j).count() == 0) continue;
      mean.push_back(m->Link(i, j).mean());
      mean_sd.push_back(m->Link(i, j).mean() + m->Link(i, j).stddev());
      p99.push_back(m->Link(i, j).Percentile(99));
    }
  }

  // Print the scatter as quantile bands per mean-latency bucket.
  TextTable t({"mean bucket[ms]", "links", "mean+SD p50", "mean+SD p90",
               "99% p50", "99% p90", "99% max"});
  for (double lo = 0.2; lo < 0.9; lo += 0.1) {
    std::vector<double> msd_in, p99_in;
    for (size_t k = 0; k < mean.size(); ++k) {
      if (mean[k] >= lo && mean[k] < lo + 0.1) {
        msd_in.push_back(mean_sd[k]);
        p99_in.push_back(p99[k]);
      }
    }
    if (msd_in.empty()) continue;
    t.AddRow({StrFormat("%.1f-%.1f", lo, lo + 0.1),
              StrFormat("%zu", msd_in.size()),
              StrFormat("%.3f", Percentile(msd_in, 50)),
              StrFormat("%.3f", Percentile(msd_in, 90)),
              StrFormat("%.3f", Percentile(p99_in, 50)),
              StrFormat("%.3f", Percentile(p99_in, 90)),
              StrFormat("%.3f", Percentile(p99_in, 100))});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf("\nPearson correlation: mean vs mean+SD %.3f, mean vs 99%% %.3f "
              "(1.0 = perfectly correlated)\n",
              PearsonCorrelation(mean, mean_sd), PearsonCorrelation(mean, p99));
  return 0;
}
