// Fig. 17: latency ordered by hop count -- also a negative result: groups
// overlap significantly (the paper observed hop counts {0, 1, 3} only).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/table.h"
#include "measure/approximations.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 17: latency order by hop count (Appendix 2)",
      "only hop counts 0, 1 and 3 are observed; a significant number of "
      "link pairs is ordered inconsistently by hop count vs latency",
      "100 EC2-profile instances, TTL-style hop counts");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/17, /*n=*/100);
  auto links = measure::ComputeLinkApproximations(fx.cloud, fx.instances);

  std::map<int, std::vector<double>> groups;
  for (const auto& link : links) {
    groups[link.hop_count].push_back(link.mean_latency_ms);
  }
  for (auto& [hops, values] : groups) {
    bench::PrintQuantiles(StrFormat("hop count = %d", hops),
                          std::move(values));
  }
  double violations = measure::ProxyOrderViolationFraction(
      links, &measure::LinkApproximation::hop_count);
  std::printf("\ncross-group order violations: %.1f %% of pair comparisons\n",
              100.0 * violations);
  return 0;
}
