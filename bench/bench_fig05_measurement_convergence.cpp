// Fig. 5: convergence of the staged measurement over time -- RMSE of the
// latency vector against the full-budget ground truth drops quickly within
// the first ~1/6 of the budget and then flattens (paper: 5 of 30 minutes).
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 5: latency measurement convergence over time",
      "root-mean-square error drops quickly within the first 5 of 30 "
      "minutes and smooths out afterwards",
      "100 instances, staged protocol with Ks=10; the full-budget run is "
      "the ground truth");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/5, /*n=*/100);
  const double full_s = bench::ScaledSeconds(30 * 60, 30);

  auto run_for = [&](double duration_s) {
    measure::ProtocolOptions opts;
    opts.duration_s = duration_s;
    opts.seed = 55;  // same seed: shorter runs are prefixes in distribution
    auto r = measure::RunStaged(fx.cloud, fx.instances, opts);
    CLOUDIA_CHECK(r.ok());
    std::vector<double> means;
    for (int i = 0; i < 100; ++i) {
      for (int j = 0; j < 100; ++j) {
        if (i != j) means.push_back(r->Link(i, j).mean());
      }
    }
    return means;
  };

  std::vector<double> truth = run_for(full_s);
  TextTable t({"time[min-equiv]", "fraction of budget", "RMSE[ms]"});
  for (int step = 1; step <= 15; ++step) {
    double frac = step / 15.0;
    std::vector<double> est = run_for(full_s * frac);
    t.AddRow({StrFormat("%.1f", 30.0 * frac), StrFormat("%.2f", frac),
              StrFormat("%.4f", Rmse(est, truth))});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
