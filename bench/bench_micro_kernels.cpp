// Micro-benchmarks (google-benchmark) of the computational kernels under
// ClouDiA: RNG, statistics, 1-D k-means, CP propagation, subgraph
// isomorphism, the LP simplex, cost evaluation, and the DES event queue.
#include <benchmark/benchmark.h>

#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cluster/kmeans1d.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "deploy/cost.h"
#include "graph/templates.h"
#include "measure/event_queue.h"
#include "netsim/cloud.h"
#include "solver/cp/alldifferent.h"
#include "solver/cp/subgraph_iso.h"
#include "solver/lp/simplex.h"

namespace {

using namespace cloudia;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Normal());
}
BENCHMARK(BM_RngNormal);

void BM_OnlineStatsAdd(benchmark::State& state) {
  OnlineStats s;
  Rng rng(2);
  for (auto _ : state) {
    s.Add(rng.Uniform());
    benchmark::DoNotOptimize(s.mean());
  }
}
BENCHMARK(BM_OnlineStatsAdd);

void BM_KMeans1D(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    values.push_back(std::round(rng.Uniform(0.2, 1.4) * 100) / 100);
  }
  for (auto _ : state) {
    auto r = cluster::KMeans1D(values, 20);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KMeans1D)->Arg(1000)->Arg(10000);

void BM_ExpectedRtt(benchmark::State& state) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 4);
  auto alloc = cloud.Allocate(100);
  const auto& inst = *alloc;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cloud.ExpectedRtt(inst[static_cast<size_t>(i % 100)],
                          inst[static_cast<size_t>((i + 7) % 100)]));
    ++i;
  }
}
BENCHMARK(BM_ExpectedRtt);

void BM_SampleRtt(benchmark::State& state) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 5);
  auto alloc = cloud.Allocate(10);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cloud.SampleRtt((*alloc)[0], (*alloc)[1], 1024, 0.0, rng));
  }
}
BENCHMARK(BM_SampleRtt);

void BM_AllDifferentPropagate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int m = n + n / 10;
  Rng rng(6);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<cp::BitSet> domains(static_cast<size_t>(n),
                                    cp::BitSet(m, true));
    for (auto& d : domains) {
      for (int v = 0; v < m; ++v) {
        if (rng.Bernoulli(0.3)) d.Remove(v);
      }
      if (d.Empty()) d.Insert(0);
    }
    cp::AllDifferent ad(n, m);
    state.ResumeTiming();
    std::vector<int> touched;
    benchmark::DoNotOptimize(ad.Propagate(domains, &touched));
  }
}
BENCHMARK(BM_AllDifferentPropagate)->Arg(50)->Arg(100);

void BM_SubgraphIsoMesh(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  graph::CommGraph mesh = graph::Mesh2D(side, side);
  cp::BitMatrix target(mesh.num_nodes(), mesh.num_nodes());
  for (const graph::Edge& e : mesh.edges()) target.Set(e.src, e.dst);
  for (auto _ : state) {
    auto phi = cp::FindSubgraphIsomorphism(mesh, target);
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(BM_SubgraphIsoMesh)->Arg(4)->Arg(6);

void BM_SimplexAssignment(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  lp::LpProblem p;
  p.num_vars = n * n;
  p.objective.resize(static_cast<size_t>(n * n));
  for (auto& c : p.objective) c = rng.Uniform(1, 10);
  for (int i = 0; i < n; ++i) {
    lp::Row r;
    for (int j = 0; j < n; ++j) r.coeffs.push_back({n * i + j, 1.0});
    r.sense = lp::RowSense::kEq;
    r.rhs = 1;
    p.rows.push_back(r);
  }
  for (int j = 0; j < n; ++j) {
    lp::Row r;
    for (int i = 0; i < n; ++i) r.coeffs.push_back({n * i + j, 1.0});
    r.sense = lp::RowSense::kEq;
    r.rhs = 1;
    p.rows.push_back(r);
  }
  for (auto _ : state) {
    auto s = lp::SolveLp(p);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SimplexAssignment)->Arg(10)->Arg(20);

void BM_CostEvaluatorLongestLink(benchmark::State& state) {
  Rng rng(8);
  graph::CommGraph mesh = graph::Mesh2D(10, 10);
  deploy::CostMatrix costs(110);
  for (int i = 0; i < costs.size(); ++i) {
    for (int j = 0; j < costs.size(); ++j) costs.At(i, j) = rng.Uniform(0.2, 1.4);
  }
  auto eval = deploy::CostEvaluator::Create(&mesh, &costs,
                                            deploy::Objective::kLongestLink);
  deploy::Deployment d = rng.SampleWithoutReplacement(110, 100);
  for (auto _ : state) benchmark::DoNotOptimize(eval->Cost(d));
}
BENCHMARK(BM_CostEvaluatorLongestLink);

// Local-search swap-evaluation kernels: pricing the candidate "swap nodes
// a and b" on a side x side mesh (LLNDP). The Full variant is what the
// descent loop cost before the incremental API (mutate, full O(E)
// re-evaluation, revert); the Delta variant prices the same candidate in
// O(deg) through the evaluator's incident-edge lists. Same probe sequence,
// same answers -- the ratio is the hot-path speedup.
struct SwapEvalFixture {
  explicit SwapEvalFixture(int side, uint64_t seed = 9)
      : rng(seed), mesh(graph::Mesh2D(side, side)) {
    const int n = mesh.num_nodes();
    const int m = n + n / 10;  // the paper's 10% over-allocation
    costs = deploy::CostMatrix(m);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        if (i != j) costs.At(i, j) = rng.Uniform(0.2, 1.4);
      }
    }
    auto created = deploy::CostEvaluator::Create(
        &mesh, &costs, deploy::Objective::kLongestLink);
    CLOUDIA_CHECK(created.ok());
    eval.emplace(std::move(created).value());
    d = rng.SampleWithoutReplacement(m, n);
    cost = eval->Cost(d);
  }

  // Deterministic non-degenerate probe sequence over node pairs.
  void Advance(int* a, int* b) const {
    const int n = mesh.num_nodes();
    *a = (*a + 7) % n;
    *b = (*b + 13) % n;
    if (*a == *b) *b = (*b + 1) % n;
  }

  // An instance no node occupies (exists: m > n), the move kernels' target.
  int FirstUnusedInstance() const {
    std::vector<bool> used(static_cast<size_t>(costs.size()), false);
    for (int s : d) used[static_cast<size_t>(s)] = true;
    int target = 0;
    while (used[static_cast<size_t>(target)]) ++target;
    return target;
  }

  Rng rng;
  graph::CommGraph mesh;
  deploy::CostMatrix costs;
  std::optional<deploy::CostEvaluator> eval;
  deploy::Deployment d;
  double cost = 0.0;
};

void BM_SwapEvalLongestLinkFull(benchmark::State& state) {
  SwapEvalFixture fx(static_cast<int>(state.range(0)));
  int a = 0, b = 1;
  for (auto _ : state) {
    std::swap(fx.d[static_cast<size_t>(a)], fx.d[static_cast<size_t>(b)]);
    double c = fx.eval->Cost(fx.d);
    std::swap(fx.d[static_cast<size_t>(a)], fx.d[static_cast<size_t>(b)]);
    benchmark::DoNotOptimize(c);
    fx.Advance(&a, &b);
  }
}
BENCHMARK(BM_SwapEvalLongestLinkFull)->Arg(15)->Arg(24);

void BM_SwapEvalLongestLinkDelta(benchmark::State& state) {
  SwapEvalFixture fx(static_cast<int>(state.range(0)));
  int a = 0, b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.eval->SwapCost(fx.d, fx.cost, a, b));
    fx.Advance(&a, &b);
  }
}
BENCHMARK(BM_SwapEvalLongestLinkDelta)->Arg(15)->Arg(24);

void BM_MoveEvalLongestLinkFull(benchmark::State& state) {
  SwapEvalFixture fx(static_cast<int>(state.range(0)));
  const int n = fx.mesh.num_nodes();
  const int target = fx.FirstUnusedInstance();
  int a = 0;
  for (auto _ : state) {
    int old = fx.d[static_cast<size_t>(a)];
    fx.d[static_cast<size_t>(a)] = target;
    double c = fx.eval->Cost(fx.d);
    fx.d[static_cast<size_t>(a)] = old;
    benchmark::DoNotOptimize(c);
    a = (a + 7) % n;
  }
}
BENCHMARK(BM_MoveEvalLongestLinkFull)->Arg(15)->Arg(24);

void BM_MoveEvalLongestLinkDelta(benchmark::State& state) {
  SwapEvalFixture fx(static_cast<int>(state.range(0)));
  const int n = fx.mesh.num_nodes();
  const int target = fx.FirstUnusedInstance();
  int a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.eval->MoveCost(fx.d, fx.cost, a, target));
    a = (a + 7) % n;
  }
}
BENCHMARK(BM_MoveEvalLongestLinkDelta)->Arg(15)->Arg(24);

void BM_EventQueueChain(benchmark::State& state) {
  for (auto _ : state) {
    measure::EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 1000) q.ScheduleAfter(0.1, chain);
    };
    q.ScheduleAt(0, chain);
    benchmark::DoNotOptimize(q.RunAll());
  }
}
BENCHMARK(BM_EventQueueChain);

// Console reporting plus capture of (name, ns/iter) for the unified
// metrics JSON (see bench_util.h) -- the same schema every other bench
// binary emits, so tools/bench_snapshot.cpp needs no per-bench parsing.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      runs_.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<std::pair<std::string, double>>& runs() const {
    return runs_;
  }

 private:
  std::vector<std::pair<std::string, double>> runs_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --json=PATH (or --json PATH) is
// the repo-wide machine-readable-output flag. Raw per-kernel times are
// informational (gate ""), while the Full/Delta ratios of the cost-eval
// kernels are emitted as gated "speedup" metrics -- within-run ratios stay
// stable across machines and load, absolute nanoseconds do not.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc));
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(arg);
    }
  }
  std::vector<char*> argp;
  argp.reserve(args.size() + 1);
  for (std::string& arg : args) argp.push_back(arg.data());
  argp.push_back(nullptr);
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, argp.data());
  if (benchmark::ReportUnrecognizedArguments(count, argp.data())) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (json_path.empty()) return 0;

  std::vector<cloudia::bench::Metric> metrics;
  for (const auto& [name, ns] : reporter.runs()) {
    metrics.push_back({"micro." + name + ".ns", ns, "ns", ""});
  }
  // Derived Full/Delta speedups for every kernel pair that ran.
  for (const auto& [name, full_ns] : reporter.runs()) {
    const size_t pos = name.find("Full/");
    if (pos == std::string::npos) continue;
    std::string delta_name = name;
    delta_name.replace(pos, 5, "Delta/");
    for (const auto& [other, delta_ns] : reporter.runs()) {
      if (other == delta_name && delta_ns > 0) {
        std::string base = name;
        base.erase(pos, 4);  // drop "Full"
        metrics.push_back(
            {"micro." + base + ".speedup", full_ns / delta_ns, "x", "higher"});
      }
    }
  }
  return cloudia::bench::WriteMetricsJson(json_path, "bench_micro_kernels",
                                          metrics)
             ? 0
             : 1;
}
