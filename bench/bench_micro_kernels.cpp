// Micro-benchmarks (google-benchmark) of the computational kernels under
// ClouDiA: RNG, statistics, 1-D k-means, CP propagation, subgraph
// isomorphism, the LP simplex, cost evaluation, and the DES event queue.
#include <benchmark/benchmark.h>

#include <cmath>

#include "cluster/kmeans1d.h"
#include "common/rng.h"
#include "common/stats.h"
#include "deploy/cost.h"
#include "graph/templates.h"
#include "measure/event_queue.h"
#include "netsim/cloud.h"
#include "solver/cp/alldifferent.h"
#include "solver/cp/subgraph_iso.h"
#include "solver/lp/simplex.h"

namespace {

using namespace cloudia;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Normal());
}
BENCHMARK(BM_RngNormal);

void BM_OnlineStatsAdd(benchmark::State& state) {
  OnlineStats s;
  Rng rng(2);
  for (auto _ : state) {
    s.Add(rng.Uniform());
    benchmark::DoNotOptimize(s.mean());
  }
}
BENCHMARK(BM_OnlineStatsAdd);

void BM_KMeans1D(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    values.push_back(std::round(rng.Uniform(0.2, 1.4) * 100) / 100);
  }
  for (auto _ : state) {
    auto r = cluster::KMeans1D(values, 20);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KMeans1D)->Arg(1000)->Arg(10000);

void BM_ExpectedRtt(benchmark::State& state) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 4);
  auto alloc = cloud.Allocate(100);
  const auto& inst = *alloc;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cloud.ExpectedRtt(inst[static_cast<size_t>(i % 100)],
                          inst[static_cast<size_t>((i + 7) % 100)]));
    ++i;
  }
}
BENCHMARK(BM_ExpectedRtt);

void BM_SampleRtt(benchmark::State& state) {
  net::CloudSimulator cloud(net::AmazonEc2Profile(), 5);
  auto alloc = cloud.Allocate(10);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cloud.SampleRtt((*alloc)[0], (*alloc)[1], 1024, 0.0, rng));
  }
}
BENCHMARK(BM_SampleRtt);

void BM_AllDifferentPropagate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int m = n + n / 10;
  Rng rng(6);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<cp::BitSet> domains(static_cast<size_t>(n),
                                    cp::BitSet(m, true));
    for (auto& d : domains) {
      for (int v = 0; v < m; ++v) {
        if (rng.Bernoulli(0.3)) d.Remove(v);
      }
      if (d.Empty()) d.Insert(0);
    }
    cp::AllDifferent ad(n, m);
    state.ResumeTiming();
    std::vector<int> touched;
    benchmark::DoNotOptimize(ad.Propagate(domains, &touched));
  }
}
BENCHMARK(BM_AllDifferentPropagate)->Arg(50)->Arg(100);

void BM_SubgraphIsoMesh(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  graph::CommGraph mesh = graph::Mesh2D(side, side);
  cp::BitMatrix target(mesh.num_nodes(), mesh.num_nodes());
  for (const graph::Edge& e : mesh.edges()) target.Set(e.src, e.dst);
  for (auto _ : state) {
    auto phi = cp::FindSubgraphIsomorphism(mesh, target);
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(BM_SubgraphIsoMesh)->Arg(4)->Arg(6);

void BM_SimplexAssignment(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  lp::LpProblem p;
  p.num_vars = n * n;
  p.objective.resize(static_cast<size_t>(n * n));
  for (auto& c : p.objective) c = rng.Uniform(1, 10);
  for (int i = 0; i < n; ++i) {
    lp::Row r;
    for (int j = 0; j < n; ++j) r.coeffs.push_back({n * i + j, 1.0});
    r.sense = lp::RowSense::kEq;
    r.rhs = 1;
    p.rows.push_back(r);
  }
  for (int j = 0; j < n; ++j) {
    lp::Row r;
    for (int i = 0; i < n; ++i) r.coeffs.push_back({n * i + j, 1.0});
    r.sense = lp::RowSense::kEq;
    r.rhs = 1;
    p.rows.push_back(r);
  }
  for (auto _ : state) {
    auto s = lp::SolveLp(p);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SimplexAssignment)->Arg(10)->Arg(20);

void BM_CostEvaluatorLongestLink(benchmark::State& state) {
  Rng rng(8);
  graph::CommGraph mesh = graph::Mesh2D(10, 10);
  deploy::CostMatrix costs(110, std::vector<double>(110, 0));
  for (auto& row : costs) {
    for (auto& c : row) c = rng.Uniform(0.2, 1.4);
  }
  auto eval = deploy::CostEvaluator::Create(&mesh, &costs,
                                            deploy::Objective::kLongestLink);
  deploy::Deployment d = rng.SampleWithoutReplacement(110, 100);
  for (auto _ : state) benchmark::DoNotOptimize(eval->Cost(d));
}
BENCHMARK(BM_CostEvaluatorLongestLink);

void BM_EventQueueChain(benchmark::State& state) {
  for (auto _ : state) {
    measure::EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 1000) q.ScheduleAfter(0.1, chain);
    };
    q.ScheduleAt(0, chain);
    benchmark::DoNotOptimize(q.RunAll());
  }
}
BENCHMARK(BM_EventQueueChain);

}  // namespace

BENCHMARK_MAIN();
