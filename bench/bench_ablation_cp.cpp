// Ablation (beyond the paper's figures): which parts of the CP solver pay
// for themselves? Toggles the compatibility-labeling filters (paper [70])
// and warm-start value hints, on the Fig. 6 instance.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "deploy/cp_llndp.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Ablation: CP solver components (degree filter, neighborhood filter, "
      "warm-start hints)",
      "the paper motivates the labeling-based filtering of Sect. 4.2 but "
      "does not ablate it; this quantifies each component",
      "90-node mesh / 100 instances / k=20, equal budget per configuration");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/42, /*n=*/100);
  deploy::CostMatrix costs = bench::MeasuredMeanCosts(
      fx.cloud, fx.instances, bench::ScaledSeconds(300, 10), 4242);
  graph::CommGraph mesh = graph::Mesh2D(9, 10);
  const double budget = bench::ScaledSeconds(8 * 60, 4);

  struct Config {
    const char* name;
    bool degree, neighborhood, hints;
  };
  const Config configs[] = {
      {"full (degree+neighborhood)", true, true, false},
      {"degree filter only", true, false, false},
      {"no filters", false, false, false},
      {"full + warm-start hints", true, true, true},
  };

  TextTable t({"configuration", "final cost[ms]", "thresholds",
               "time of best[s]", "optimal?"});
  for (const Config& cfg : configs) {
    deploy::CpLlndpOptions opts;
    opts.cost_clusters = 20;
    opts.deadline = Deadline::After(budget);
    opts.seed = 7;
    opts.degree_filter = cfg.degree;
    opts.neighborhood_filter = cfg.neighborhood;
    opts.warm_start_hints = cfg.hints;
    auto r = deploy::SolveLlndpCp(mesh, costs, opts);
    CLOUDIA_CHECK(r.ok());
    t.AddRow({cfg.name, StrFormat("%.4f", r->cost),
              StrFormat("%lld", static_cast<long long>(r->iterations)),
              StrFormat("%.2f", r->trace.back().seconds),
              r->proven_optimal ? "yes" : "no"});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
