// Fig. 4: normalized relative error of the staged and uncoordinated
// measurement methods against the token-passing baseline, 50 instances.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

namespace {

using namespace cloudia;

// Per-link relative error between two normalized mean-latency vectors
// (exactly the paper's Sect. 6.2 methodology).
std::vector<double> NormalizedRelativeErrors(
    const measure::MeasurementResult& baseline,
    const measure::MeasurementResult& candidate, int n) {
  std::vector<double> base_vec, cand_vec;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (baseline.Link(i, j).count() == 0 ||
          candidate.Link(i, j).count() == 0) {
        continue;
      }
      base_vec.push_back(baseline.Link(i, j).mean());
      cand_vec.push_back(candidate.Link(i, j).mean());
    }
  }
  base_vec = NormalizeToUnitVector(base_vec);
  cand_vec = NormalizeToUnitVector(cand_vec);
  std::vector<double> errors;
  errors.reserve(base_vec.size());
  for (size_t k = 0; k < base_vec.size(); ++k) {
    errors.push_back(std::fabs(cand_vec[k] - base_vec[k]) / base_vec[k]);
  }
  return errors;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 4: measurement accuracy (normalized relative error vs token "
      "passing)",
      "staged: 90% of links < 10% error, max < 30%; uncoordinated: 10% of "
      "links > 50% error",
      "50 instances; all protocols get the same virtual measurement budget");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/4, /*n=*/50);
  measure::ProtocolOptions opts;
  opts.duration_s = bench::ScaledSeconds(30 * 60, 20);
  opts.seed = 101;
  auto token = measure::RunTokenPassing(fx.cloud, fx.instances, opts);
  opts.seed = 102;
  auto staged = measure::RunStaged(fx.cloud, fx.instances, opts);
  opts.seed = 103;
  auto uncoordinated = measure::RunUncoordinated(fx.cloud, fx.instances, opts);
  if (!token.ok() || !staged.ok() || !uncoordinated.ok()) {
    std::fprintf(stderr, "protocol run failed\n");
    return 1;
  }

  auto staged_err = NormalizedRelativeErrors(*token, *staged, 50);
  auto uncoord_err = NormalizedRelativeErrors(*token, *uncoordinated, 50);
  std::printf("\nStaged:\n");
  cloudia::bench::PrintCdf("relative error", staged_err, 20);
  std::printf("\nUncoordinated:\n");
  cloudia::bench::PrintCdf("relative error", uncoord_err, 20);
  std::printf("\nstaged       p90 %.3f  max %.3f\n",
              Percentile(staged_err, 90), Percentile(staged_err, 100));
  std::printf("uncoordinated p90 %.3f  max %.3f\n",
              Percentile(uncoord_err, 90), Percentile(uncoord_err, 100));
  return 0;
}
