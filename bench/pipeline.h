// Shared end-to-end pipeline for the system-level figures (11-13): allocate
// -> measure -> search -> run the real workload on both the default and the
// optimized deployment.
#ifndef CLOUDIA_BENCH_PIPELINE_H_
#define CLOUDIA_BENCH_PIPELINE_H_

#include <string>

#include "bench_util.h"
#include "common/check.h"
#include "deploy/solver_registry.h"
#include "graph/templates.h"
#include "measure/protocols.h"
#include "workloads/aggregation.h"
#include "workloads/behavioral.h"
#include "workloads/kvstore.h"

namespace cloudia::bench {

enum class Workload { kBehavioral, kAggregation, kKvStore };

inline const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kBehavioral:
      return "Behavioral Simulation";
    case Workload::kAggregation:
      return "Aggregation Query";
    case Workload::kKvStore:
      return "Key-Value Store";
  }
  return "?";
}

/// Communication graph per workload, at the paper's node counts
/// (simulation/KV: 100 nodes; aggregation: ~50 nodes).
inline graph::CommGraph WorkloadGraph(Workload w) {
  switch (w) {
    case Workload::kBehavioral:
      return graph::Mesh2D(10, 10);
    case Workload::kAggregation:
      return graph::AggregationTree(7, 3);  // 1 + 7 + 49 = 57 nodes
    case Workload::kKvStore:
      return graph::Bipartite(10, 90);
  }
  CLOUDIA_CHECK(false);
}

inline deploy::Objective WorkloadObjective(Workload w) {
  // Longest path fits the aggregation tree; longest link fits the other two
  // (the KV store matches neither exactly; the paper uses longest link).
  return w == Workload::kAggregation ? deploy::Objective::kLongestPath
                                     : deploy::Objective::kLongestLink;
}

/// Runs the workload simulator and returns its primary metric (ms).
inline double RunWorkload(const net::CloudSimulator& cloud, Workload w,
                          const graph::CommGraph& g,
                          const wl::NodePlacement& placement, uint64_t seed) {
  switch (w) {
    case Workload::kBehavioral: {
      wl::BehavioralConfig cfg;
      // Long enough to span many burst windows; per-tick time is what the
      // paper's 100K-tick runs measure.
      cfg.ticks = 5000;
      cfg.seed = seed;
      auto r = wl::RunBehavioralSimulation(cloud, g, placement, cfg);
      CLOUDIA_CHECK(r.ok());
      return r->primary_ms;
    }
    case Workload::kAggregation: {
      wl::AggregationConfig cfg;
      cfg.queries = 4000;
      cfg.seed = seed;
      auto r = wl::RunAggregationQueries(cloud, g, placement, cfg);
      CLOUDIA_CHECK(r.ok());
      return r->primary_ms;
    }
    case Workload::kKvStore: {
      wl::KvStoreConfig cfg;
      cfg.queries = 6000;
      cfg.touched_per_query = 16;
      cfg.seed = seed;
      auto r = wl::RunKvStoreQueries(cloud, g, placement, cfg);
      CLOUDIA_CHECK(r.ok());
      return r->primary_ms;
    }
  }
  CLOUDIA_CHECK(false);
}

struct PipelineOutcome {
  double default_ms = 0.0;
  double optimized_ms = 0.0;
  double ReductionPercent() const {
    return default_ms > 0 ? 100.0 * (default_ms - optimized_ms) / default_ms
                          : 0.0;
  }
};

/// Full pipeline on an existing allocation: measure -> search (paper-default
/// solver per objective) -> run workload on default (first-n identity) and
/// optimized deployments.
inline PipelineOutcome RunPipeline(const net::CloudSimulator& cloud,
                                   const std::vector<net::Instance>& allocated,
                                   Workload w,
                                   measure::CostMetric metric,
                                   uint64_t seed) {
  graph::CommGraph g = WorkloadGraph(w);
  int n = g.num_nodes();
  CLOUDIA_CHECK(n <= static_cast<int>(allocated.size()));

  measure::ProtocolOptions popts;
  popts.duration_s =
      ScaledSeconds(300.0 * static_cast<double>(allocated.size()) / 100.0, 10);
  popts.seed = seed * 13 + 1;
  auto measured = measure::RunStaged(cloud, allocated, popts);
  CLOUDIA_CHECK(measured.ok());
  measure::BuildCostMatrixOptions bopts;
  bopts.allow_missing = true;  // scaled-down budgets may leave gaps
  auto built = measure::BuildCostMatrix(*measured, metric, bopts);
  CLOUDIA_CHECK(built.ok());
  deploy::CostMatrix costs = std::move(built).value();

  // Paper-default solver per objective, dispatched through the registry.
  deploy::NdpProblem problem;
  problem.graph = &g;
  problem.costs = &costs;
  problem.objective = WorkloadObjective(w);
  const bool longest_link =
      problem.objective == deploy::Objective::kLongestLink;
  const deploy::NdpSolver* solver =
      deploy::SolverRegistry::Global().Find(longest_link ? "cp" : "mip");
  CLOUDIA_CHECK(solver != nullptr);

  deploy::NdpSolveOptions sopts;
  sopts.objective = problem.objective;
  sopts.cost_clusters = longest_link ? 20 : 0;
  sopts.seed = seed;
  // Half the paper's 15-minute budget: both solvers converge well before it.
  deploy::SolveContext context(
      Deadline::After(ScaledSeconds(7.5 * 60, 5)));
  auto solved = solver->Solve(problem, sopts, context);
  CLOUDIA_CHECK(solved.ok());

  wl::NodePlacement optimized, fallback;
  for (int i = 0; i < n; ++i) {
    optimized.push_back(
        allocated[static_cast<size_t>(solved->deployment[static_cast<size_t>(i)])]);
    fallback.push_back(allocated[static_cast<size_t>(i)]);
  }
  PipelineOutcome out;
  out.optimized_ms = RunWorkload(cloud, w, g, optimized, seed * 17 + 3);
  out.default_ms = RunWorkload(cloud, w, g, fallback, seed * 17 + 3);
  return out;
}

}  // namespace cloudia::bench

#endif  // CLOUDIA_BENCH_PIPELINE_H_
