// Fig. 1: CDF of mean pairwise end-to-end latencies among 100 EC2 m1.large
// instances (1 KB TCP round trips).
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 1: latency heterogeneity in EC2",
      "~10% of instance pairs above 0.7 ms, bottom ~10% below 0.4 ms; "
      "range roughly 0.2-1.4 ms",
      "100 instances on the EC2-profile simulator, model-expected mean RTTs");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/1, /*n=*/100);
  std::vector<double> latencies;
  for (size_t i = 0; i < fx.instances.size(); ++i) {
    for (size_t j = 0; j < fx.instances.size(); ++j) {
      if (i != j) {
        latencies.push_back(fx.cloud.ExpectedRtt(fx.instances[i],
                                                 fx.instances[j]));
      }
    }
  }
  bench::PrintCdf("mean latency [ms]", latencies, 25);
  std::printf("\nfraction of pairs > 0.7 ms : %.3f (paper ~0.10)\n",
              1.0 - static_cast<double>(std::count_if(
                        latencies.begin(), latencies.end(),
                        [](double v) { return v <= 0.7; })) /
                        latencies.size());
  std::printf("fraction of pairs < 0.4 ms : %.3f (paper ~0.10)\n",
              static_cast<double>(std::count_if(
                  latencies.begin(), latencies.end(),
                  [](double v) { return v < 0.4; })) /
                  latencies.size());
  return 0;
}
