#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/stats.h"
#include "common/table.h"

namespace cloudia::bench {

double Scale() {
  static double scale = [] {
    const char* env = std::getenv("CLOUDIA_BENCH_SCALE");
    double s = env != nullptr ? std::atof(env) : 0.04;
    return std::clamp(s, 0.001, 1.0);
  }();
  return scale;
}

double ScaledSeconds(double paper_seconds, double min_seconds) {
  return std::max(paper_seconds * Scale(), min_seconds);
}

void PrintHeader(const std::string& figure, const std::string& paper_claim,
                 const std::string& setup) {
  std::printf("==================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("setup: %s (CLOUDIA_BENCH_SCALE=%.3f)\n", setup.c_str(), Scale());
  std::printf("==================================================================\n");
}

void PrintCdf(const std::string& value_label, std::vector<double> values,
              int points) {
  auto cdf = EmpiricalCdf(std::move(values), static_cast<size_t>(points));
  TextTable t({value_label, "CDF"});
  for (const CdfPoint& p : cdf) {
    t.AddRow({StrFormat("%.4f", p.value), StrFormat("%.3f", p.cumulative)});
  }
  std::printf("%s", t.ToString().c_str());
}

void PrintQuantiles(const std::string& label, std::vector<double> values) {
  if (values.empty()) {
    std::printf("%-24s (no data)\n", label.c_str());
    return;
  }
  std::printf("%-24s min %.4f  p10 %.4f  p50 %.4f  p90 %.4f  max %.4f  (n=%zu)\n",
              label.c_str(), Percentile(values, 0), Percentile(values, 10),
              Percentile(values, 50), Percentile(values, 90),
              Percentile(values, 100), values.size());
}

CloudFixture::CloudFixture(net::ProviderProfile profile, uint64_t seed, int n)
    : cloud(std::move(profile), seed) {
  auto alloc = cloud.Allocate(n);
  CLOUDIA_CHECK(alloc.ok());
  instances = std::move(alloc).value();
}

deploy::CostMatrix MeasuredMeanCosts(const net::CloudSimulator& cloud,
                                     const std::vector<net::Instance>& instances,
                                     double virtual_s, uint64_t seed) {
  measure::ProtocolOptions opts;
  opts.duration_s = virtual_s;
  opts.seed = seed;
  auto result = measure::RunStaged(cloud, instances, opts);
  CLOUDIA_CHECK(result.ok());
  // Short scaled budgets may leave links unsampled; benches prefer a warned
  // sentinel fill over aborting the whole figure.
  measure::BuildCostMatrixOptions bopts;
  bopts.allow_missing = true;
  measure::CostMatrixCoverage coverage;
  auto costs = measure::BuildCostMatrix(*result, measure::CostMetric::kMean,
                                        bopts, &coverage);
  CLOUDIA_CHECK(costs.ok());
  if (coverage.missing_links > 0) {
    std::fprintf(stderr,
                 "warning: %lld of %lld links unsampled; filled with the "
                 "%g ms sentinel\n",
                 static_cast<long long>(coverage.missing_links),
                 static_cast<long long>(coverage.total_links),
                 deploy::kUnmeasuredCostMs);
  }
  return std::move(costs).value();
}

bool WriteMetricsJson(const std::string& path, const std::string& bench,
                      const std::vector<Metric>& metrics) {
  std::FILE* f = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": [\n", bench.c_str());
  for (size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.9g, \"unit\": \"%s\", "
                 "\"gate\": \"%s\"}%s\n",
                 m.name.c_str(), m.value, m.unit.c_str(), m.gate.c_str(),
                 i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
  return true;
}

std::vector<double> OffDiagonal(const deploy::CostMatrix& m) {
  std::vector<double> out;
  int n = m.size();
  out.reserve(static_cast<size_t>(n) * static_cast<size_t>(n > 0 ? n - 1 : 0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) out.push_back(m.At(i, j));
    }
  }
  return out;
}

}  // namespace cloudia::bench
