// Fig. 8: scalability of the CP solver -- average convergence time as a
// function of the instance count, over random subsets of one allocation.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "deploy/cp_llndp.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 8: LLNDP-CP scalability",
      "average convergence time increases acceptably with instance count "
      "(20 to 100 instances, 50 random subsets each)",
      "random subsets of one 100-instance allocation; nodes = 90% of "
      "instances; convergence = time of last improvement within the budget");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/8, /*n=*/100);
  deploy::CostMatrix full_costs = bench::MeasuredMeanCosts(
      fx.cloud, fx.instances, bench::ScaledSeconds(300, 10), 88);
  // The paper uses 50 subsets and a 1-hour cap per solve; scaled down to
  // keep the full harness runnable (the trend is visible with fewer).
  const int subsets = std::clamp(static_cast<int>(75 * bench::Scale()), 2, 50);
  const double budget = bench::ScaledSeconds(5 * 60, 4);
  Rng rng(3);

  TextTable t({"#instances", "#nodes", "avg convergence time[s]",
               "avg cost[ms]", "subsets"});
  for (int m : {20, 40, 60, 80, 100}) {
    double conv_total = 0, cost_total = 0;
    for (int s = 0; s < subsets; ++s) {
      std::vector<int> subset = rng.SampleWithoutReplacement(100, m);
      deploy::CostMatrix costs(m);
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < m; ++j) {
          if (i != j) {
            costs.At(i, j) = full_costs.At(subset[static_cast<size_t>(i)],
                                           subset[static_cast<size_t>(j)]);
          }
        }
      }
      int nodes = m * 9 / 10;
      // Nearest mesh shape with `nodes` cells.
      int rows = 1;
      for (int r = 2; r * r <= nodes; ++r) {
        if (nodes % r == 0) rows = r;
      }
      graph::CommGraph mesh = graph::Mesh2D(rows, nodes / rows);
      deploy::CpLlndpOptions opts;
      opts.cost_clusters = 20;
      opts.deadline = Deadline::After(budget);
      opts.seed = 1000 + static_cast<uint64_t>(s);
      auto r = deploy::SolveLlndpCp(mesh, costs, opts);
      CLOUDIA_CHECK(r.ok());
      conv_total += r->trace.back().seconds;
      cost_total += r->cost;
    }
    t.AddRow({StrFormat("%d", m), StrFormat("%d", m * 9 / 10),
              StrFormat("%.2f", conv_total / subsets),
              StrFormat("%.4f", cost_total / subsets),
              StrFormat("%d", subsets)});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
