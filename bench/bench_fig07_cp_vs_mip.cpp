// Fig. 7: CP vs MIP convergence for LLNDP with k=20 cost clusters at the
// 100-instance scale -- the MIP encoding's weak relaxation makes it
// uncompetitive.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "deploy/cp_llndp.h"
#include "deploy/mip_llndp.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 7: LLNDP solved by CP vs MIP (k=20 clusters)",
      "CP finds a significantly better deployment; MIP performs poorly at "
      "the 100-instance scale (weak linear relaxation)",
      "same 90-node mesh / 100 instances / budget for both solvers");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/7, /*n=*/100);
  deploy::CostMatrix costs = bench::MeasuredMeanCosts(
      fx.cloud, fx.instances, bench::ScaledSeconds(300, 10), 77);
  graph::CommGraph mesh = graph::Mesh2D(9, 10);
  const double budget = bench::ScaledSeconds(16 * 60, 5);

  TextTable t({"solver", "time[s]", "longest-link latency[ms]"});

  deploy::CpLlndpOptions cp_opts;
  cp_opts.cost_clusters = 20;
  cp_opts.deadline = Deadline::After(budget);
  cp_opts.seed = 19;
  auto cp = deploy::SolveLlndpCp(mesh, costs, cp_opts);
  CLOUDIA_CHECK(cp.ok());
  for (const deploy::TracePoint& p : cp->trace) {
    t.AddRow({"CP", StrFormat("%.2f", p.seconds), StrFormat("%.4f", p.cost)});
  }

  deploy::MipNdpOptions mip_opts;
  mip_opts.cost_clusters = 20;
  mip_opts.deadline = Deadline::After(budget);
  mip_opts.seed = 19;
  auto mip = deploy::SolveLlndpMip(mesh, costs, mip_opts);
  CLOUDIA_CHECK(mip.ok());
  for (const deploy::TracePoint& p : mip->trace) {
    t.AddRow({"MIP", StrFormat("%.2f", p.seconds), StrFormat("%.4f", p.cost)});
  }

  std::printf("%s", t.ToString().c_str());
  std::printf("\nfinal: CP %.4f ms vs MIP %.4f ms (lower is better)\n",
              cp->cost, mip->cost);
  return 0;
}
