// Fig. 7: CP vs MIP convergence for LLNDP with k=20 cost clusters at the
// 100-instance scale -- the MIP encoding's weak relaxation makes it
// uncompetitive. Extended with a Portfolio series that races both solvers
// concurrently against a shared incumbent: its final incumbent is never
// worse than the best single solver on the same instances.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "deploy/cp_llndp.h"
#include "deploy/mip_llndp.h"
#include "deploy/solve.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 7: LLNDP solved by CP vs MIP (k=20 clusters)",
      "CP finds a significantly better deployment; MIP performs poorly at "
      "the 100-instance scale (weak linear relaxation); the concurrent "
      "cp+mip portfolio matches or beats the better of the two",
      "same 90-node mesh / 100 instances / budget for all series");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/7, /*n=*/100);
  deploy::CostMatrix costs = bench::MeasuredMeanCosts(
      fx.cloud, fx.instances, bench::ScaledSeconds(300, 10), 77);
  graph::CommGraph mesh = graph::Mesh2D(9, 10);
  const double budget = bench::ScaledSeconds(16 * 60, 5);

  TextTable t({"solver", "time[s]", "longest-link latency[ms]"});

  deploy::CpLlndpOptions cp_opts;
  cp_opts.cost_clusters = 20;
  cp_opts.deadline = Deadline::After(budget);
  cp_opts.seed = 19;
  auto cp = deploy::SolveLlndpCp(mesh, costs, cp_opts);
  CLOUDIA_CHECK(cp.ok());
  for (const deploy::TracePoint& p : cp->trace) {
    t.AddRow({"CP", StrFormat("%.2f", p.seconds), StrFormat("%.4f", p.cost)});
  }

  deploy::MipNdpOptions mip_opts;
  mip_opts.cost_clusters = 20;
  mip_opts.deadline = Deadline::After(budget);
  mip_opts.seed = 19;
  auto mip = deploy::SolveLlndpMip(mesh, costs, mip_opts);
  CLOUDIA_CHECK(mip.ok());
  for (const deploy::TracePoint& p : mip->trace) {
    t.AddRow({"MIP", StrFormat("%.2f", p.seconds), StrFormat("%.4f", p.cost)});
  }

  // Portfolio series: cp and mip race concurrently (one worker each) on the
  // same instances, seed, and budget, sharing one global incumbent.
  deploy::NdpSolveOptions pf_opts;
  pf_opts.objective = deploy::Objective::kLongestLink;
  pf_opts.cost_clusters = 20;
  pf_opts.portfolio_members = {"cp", "mip"};
  pf_opts.threads = 2;
  pf_opts.seed = 19;
  deploy::SolveContext pf_context(Deadline::After(budget));
  auto pf = deploy::SolveNodeDeploymentByName(mesh, costs, "portfolio",
                                              pf_opts, pf_context);
  CLOUDIA_CHECK(pf.ok());
  for (const deploy::TracePoint& p : pf->trace) {
    t.AddRow({"Portfolio", StrFormat("%.2f", p.seconds),
              StrFormat("%.4f", p.cost)});
  }

  std::printf("%s", t.ToString().c_str());
  const double best_single = std::min(cp->cost, mip->cost);
  std::printf("\nfinal: CP %.4f ms vs MIP %.4f ms vs Portfolio %.4f ms "
              "(lower is better)\n",
              cp->cost, mip->cost, pf->cost);
  std::printf("portfolio vs best single solver: %.4f vs %.4f ms (%s)\n",
              pf->cost, best_single,
              pf->cost <= best_single + 1e-9 ? "never worse" : "WORSE");
  return 0;
}
