// Fig. 14: lightweight approaches vs CP for LLNDP over 20 allocations of 50
// instances (10% over-allocation -> 45 application nodes).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/table.h"
#include "deploy/solve.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 14: lightweight approaches vs CP (LLNDP)",
      "G1 worst (+66.7% vs CP); G2 much better than G1; R1 slightly better "
      "than G2 (-3.4%); R2 within 8.65% of CP",
      "20 allocations x 50 instances, 45-node mesh; R2 and CP share the "
      "same wall-clock budget");

  const double budget = bench::ScaledSeconds(2 * 60, 2);
  const int allocations = 20;
  graph::CommGraph mesh = graph::Mesh2D(5, 9);  // 45 nodes

  std::map<deploy::Method, double> total;
  const deploy::Method methods[] = {
      deploy::Method::kGreedyG1, deploy::Method::kGreedyG2,
      deploy::Method::kRandomR1, deploy::Method::kRandomR2, deploy::Method::kCp};

  for (int a = 0; a < allocations; ++a) {
    bench::CloudFixture fx(net::AmazonEc2Profile(),
                           /*seed=*/1400 + static_cast<uint64_t>(a), 50);
    deploy::CostMatrix costs = bench::MeasuredMeanCosts(
        fx.cloud, fx.instances, bench::ScaledSeconds(150, 5),
        9000 + static_cast<uint64_t>(a));
    for (deploy::Method method : methods) {
      deploy::NdpSolveOptions opts;
      opts.objective = deploy::Objective::kLongestLink;
      opts.method = method;
      opts.time_budget_s = budget;
      opts.cost_clusters = method == deploy::Method::kCp ? 20 : 0;
      opts.r1_samples = 1000;
      opts.seed = static_cast<uint64_t>(a) * 31 + 7;
      auto r = deploy::SolveNodeDeployment(mesh, costs, opts);
      CLOUDIA_CHECK(r.ok());
      total[method] += r->cost;
    }
    std::printf("allocation %2d done\n", a + 1);
  }

  TextTable t({"method", "avg longest-link latency[ms]", "vs CP[%]"});
  double cp_avg = total[deploy::Method::kCp] / allocations;
  for (deploy::Method method : methods) {
    double avg = total[method] / allocations;
    t.AddRow({deploy::MethodName(method), StrFormat("%.4f", avg),
              StrFormat("%+.2f", 100.0 * (avg - cp_avg) / cp_avg)});
  }
  std::printf("\n%s", t.ToString().c_str());
  return 0;
}
