// Fig. 21: mean latency stability in Rackspace Cloud Server over 60 hours.
#include "provider_figures.h"

int main() {
  cloudia::bench::RunProviderStabilityFigure(
      "Figure 21: mean latency stability in Rackspace Cloud Server",
      "per-link hourly mean latencies stay flat over 60 h, in line with GCE",
      cloudia::net::RackspaceCloudProfile(), /*seed=*/21);
  return 0;
}
