// Fig. 20: latency heterogeneity in Rackspace Cloud Server.
#include "provider_figures.h"

int main() {
  cloudia::bench::RunProviderCdfFigure(
      "Figure 20: latency heterogeneity in Rackspace Cloud Server",
      "~5% of pairs below 0.24 ms, top 5% above 0.38 ms",
      cloudia::net::RackspaceCloudProfile(), /*n=*/50, /*seed=*/20);
  return 0;
}
