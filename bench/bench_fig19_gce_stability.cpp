// Fig. 19: mean latency stability in Google Compute Engine over 60 hours.
#include "provider_figures.h"

int main() {
  cloudia::bench::RunProviderStabilityFigure(
      "Figure 19: mean latency stability in Google Compute Engine",
      "per-link hourly mean latencies stay flat over 60 h",
      cloudia::net::GoogleComputeEngineProfile(), /*seed=*/19);
  return 0;
}
