// Ablation: k-means cluster-count sweep for LLNDP-CP, extending Fig. 6's
// three configurations to a full k sweep, reporting cost, thresholds tried
// and the approximation gap introduced by clustering.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "deploy/cp_llndp.h"
#include "graph/templates.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Ablation: cost-cluster count sweep (LLNDP-CP)",
      "extends Fig. 6: k trades iteration count against objective "
      "granularity; the paper picks k=20",
      "90-node mesh / 100 instances, equal budget per k");

  bench::CloudFixture fx(net::AmazonEc2Profile(), /*seed=*/43, /*n=*/100);
  deploy::CostMatrix costs = bench::MeasuredMeanCosts(
      fx.cloud, fx.instances, bench::ScaledSeconds(300, 10), 4343);
  graph::CommGraph mesh = graph::Mesh2D(9, 10);
  const double budget = bench::ScaledSeconds(8 * 60, 4);

  TextTable t({"k", "final cost[ms]", "thresholds tried", "time of best[s]",
               "optimal(clustered)?"});
  for (int k : {5, 10, 20, 40, 80, 0}) {
    deploy::CpLlndpOptions opts;
    opts.cost_clusters = k;
    opts.deadline = Deadline::After(budget);
    opts.seed = 11;
    auto r = deploy::SolveLlndpCp(mesh, costs, opts);
    CLOUDIA_CHECK(r.ok());
    std::string label = k == 0 ? "none" : StrFormat("%d", k);
    t.AddRow({label, StrFormat("%.4f", r->cost),
              StrFormat("%lld", static_cast<long long>(r->iterations)),
              StrFormat("%.2f", r->trace.back().seconds),
              r->proven_optimal ? "yes" : "no"});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
