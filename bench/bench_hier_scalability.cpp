// Hierarchical NDP solving at datacenter scale (ROADMAP Open item 1).
//
// The paper's scalability study (Fig. 8) shows flat CP search collapsing
// well below datacenter scale; every flat solver additionally needs the
// materialized m x m cost matrix (20 GB at 50k instances). This bench
// drives hier::SolveHierarchical against a synthetic rack-structured
// CostSource -- costs computed on the fly, never materialized -- and checks
// the three claims the subsystem makes:
//
//   quality   at sizes where flat solves are still feasible (n <= 512 here)
//             the hier objective is within 10% of the flat incumbent
//             (LocalSearch on the materialized matrix, same seed).
//   scaling   wall clock grows near-linearly across the 1k -> 10k -> 50k
//             ladder: per-node wall time spreads by at most 4x between the
//             smallest and largest size (a quadratic solver would spread
//             50x over this ladder).
//   determinism
//             a --threads=1 solve repeated with the same seed returns a
//             bit-identical deployment.
//
// Exit 0 only if all three PASS. --json=PATH additionally emits the
// measurements machine-readably (the checked-in BENCH_*.json snapshots).
//
// Flags: --sizes=A,B,... (default 1000,10000,50000), --quality-sizes=A,B,...
// (default 256,512), --rack=N (instances per rack, default 128),
// --budget=S (flat solver budget in the quality stage, default 10),
// --threads=N (0 = hardware), --seed=N (default 7), --json=PATH,
// --skip-quality, --skip-determinism.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/timer.h"
#include "deploy/cost.h"
#include "deploy/solve.h"
#include "graph/comm_graph.h"
#include "graph/templates.h"
#include "hier/cost_source.h"
#include "hier/solver.h"

namespace {

using namespace cloudia;

// SplitMix64 finalizer: the per-pair jitter must be a pure function of the
// pair so the implicit matrix is deterministic and thread-safe.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double U01(uint64_t key) {
  return static_cast<double>(Mix(key) >> 11) * (1.0 / 9007199254740992.0);
}

// Rack-structured synthetic latency: ~0.25-0.35 ms inside a rack, an
// aggregation-layer base of ~1.2-2.0 ms between rack pairs with a small
// per-link jitter. Symmetric; mirrors the bimodal EC2 CDF of Fig. 1 at a
// scale the simulator cannot reach.
double SyntheticCost(uint64_t seed, int rack_size, int i, int j) {
  if (i == j) return 0.0;
  const uint64_t a = static_cast<uint64_t>(std::min(i, j));
  const uint64_t b = static_cast<uint64_t>(std::max(i, j));
  const uint64_t ra = a / static_cast<uint64_t>(rack_size);
  const uint64_t rb = b / static_cast<uint64_t>(rack_size);
  const double link = U01(seed ^ (a * 1000003ULL + b));
  if (ra == rb) return 0.25 + 0.10 * link;
  const double base = 1.2 + 0.8 * U01(seed ^ 0x5ca1ab1eULL ^
                                      (ra * 8191ULL + rb));
  return base + 0.05 * link;
}

// Near-square mesh with >= n nodes snapped exactly to n via factorization.
graph::CommGraph MeshOf(int n) {
  int rows = 1;
  for (int r = 2; r * r <= n; ++r) {
    if (n % r == 0) rows = r;
  }
  return graph::Mesh2D(rows, n / rows);
}

struct LadderPoint {
  int n = 0;
  int m = 0;
  double wall_s = 0.0;
  double cost = 0.0;
  hier::HierStats stats;
};

struct QualityPoint {
  int n = 0;
  double flat_cost = 0.0;
  double hier_cost = 0.0;
  double ratio = 0.0;
};

Result<hier::HierSolveResult> RunHier(const graph::CommGraph& app,
                                      const hier::CostSource& source,
                                      int threads, uint64_t seed) {
  hier::HierOptions options;
  options.threads = threads;
  options.seed = seed;
  deploy::SolveContext context(Deadline::Infinite());
  return hier::SolveHierarchical(app, source, deploy::Objective::kLongestLink,
                                 options, context);
}

// Unified-schema metrics (bench_util.h). Gated: per-size quality ratios
// ("lower" -- worse hier/flat is a regression), the determinism and pass
// indicators ("near"). Informational: wall clocks, costs, structural counts
// -- absolute timings vary with machine load, so only the within-run
// ratios are regression-gated.
void WriteJson(const std::string& path,
               const std::vector<QualityPoint>& quality,
               const std::vector<LadderPoint>& ladder, double scaling_spread,
               bool deterministic, bool pass) {
  std::vector<bench::Metric> metrics;
  for (const QualityPoint& q : quality) {
    const std::string base = "hier.q" + std::to_string(q.n) + ".";
    metrics.push_back({base + "ratio", q.ratio, "x", "lower"});
    metrics.push_back({base + "flat_cost", q.flat_cost, "ms", ""});
    metrics.push_back({base + "hier_cost", q.hier_cost, "ms", ""});
  }
  for (const LadderPoint& p : ladder) {
    const std::string base = "hier.n" + std::to_string(p.n) + ".";
    metrics.push_back({base + "wall", p.wall_s, "s", ""});
    metrics.push_back({base + "cost", p.cost, "ms", ""});
    metrics.push_back(
        {base + "clusters", static_cast<double>(p.stats.clusters), "", ""});
    metrics.push_back(
        {base + "shards", static_cast<double>(p.stats.shards), "", ""});
    metrics.push_back({base + "us_per_node", 1e6 * p.wall_s / p.n, "us", ""});
  }
  metrics.push_back({"hier.scaling_spread", scaling_spread, "x", ""});
  metrics.push_back(
      {"hier.deterministic", deterministic ? 1.0 : 0.0, "bool", "near"});
  metrics.push_back({"hier.pass", pass ? 1.0 : 0.0, "bool", "near"});
  if (bench::WriteMetricsJson(path, "bench_hier_scalability", metrics)) {
    std::printf("wrote %s\n", path.c_str());
  }
}

std::vector<int> ParseSizes(const std::string& csv,
                            const std::vector<int>& fallback) {
  std::vector<int> sizes;
  std::string token;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!token.empty()) sizes.push_back(std::atoi(token.c_str()));
      token.clear();
    } else {
      token += c;
    }
  }
  for (int s : sizes) {
    if (s < 4) {
      std::fprintf(stderr, "bad size list '%s'\n", csv.c_str());
      return fallback;
    }
  }
  return sizes.empty() ? fallback : sizes;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  CLOUDIA_CHECK(flags.ok());
  auto rack_flag = flags->GetInt("rack", 128);
  auto threads_flag = flags->GetInt("threads", 0);
  auto seed_flag = flags->GetInt("seed", 7);
  auto budget = flags->GetDouble("budget", 10.0);
  CLOUDIA_CHECK(rack_flag.ok() && threads_flag.ok() && seed_flag.ok() &&
                budget.ok());
  const int rack = static_cast<int>(*rack_flag);
  const int threads = static_cast<int>(*threads_flag);
  const uint64_t seed = static_cast<uint64_t>(*seed_flag);
  const std::vector<int> sizes =
      ParseSizes(flags->GetString("sizes", ""), {1000, 10000, 50000});
  const std::vector<int> quality_sizes =
      ParseSizes(flags->GetString("quality-sizes", ""), {256, 512});
  const bool skip_quality = flags->GetBool("skip-quality", false);
  const bool skip_determinism = flags->GetBool("skip-determinism", false);
  const std::string json_path = flags->GetString("json", "");

  std::printf(
      "hierarchical NDP scalability: rack-structured synthetic costs "
      "(rack=%d, m=2n),\nlongest-link objective, implicit cost source "
      "(no materialized matrix)\n\n",
      rack);

  // --- quality vs the flat incumbent at sizes flat can still handle -------
  bool quality_pass = true;
  std::vector<QualityPoint> quality;
  if (!skip_quality) {
    std::printf("quality vs flat LocalSearch (budget %.0f s, same seed):\n",
                *budget);
    std::printf("    n    flat cost      hier cost     hier/flat\n");
    for (int n : quality_sizes) {
      const int m = 2 * n;
      graph::CommGraph app = MeshOf(n);
      hier::CallbackCostSource source(
          m, [&](int i, int j) { return SyntheticCost(seed, rack, i, j); });
      // Materialize for the flat solver; only feasible at these sizes.
      std::vector<int> all(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) all[static_cast<size_t>(i)] = i;
      deploy::CostMatrix dense = hier::ExtractSubmatrix(source, all);

      deploy::NdpSolveOptions flat_opts;
      flat_opts.objective = deploy::Objective::kLongestLink;
      flat_opts.seed = seed;
      deploy::SolveContext flat_context(Deadline::After(*budget));
      auto flat = deploy::SolveNodeDeploymentByName(app, dense, "local",
                                                    flat_opts, flat_context);
      CLOUDIA_CHECK(flat.ok());

      auto hier_result = RunHier(app, source, threads, seed);
      CLOUDIA_CHECK(hier_result.ok());

      QualityPoint q;
      q.n = n;
      q.flat_cost = flat->cost;
      q.hier_cost = hier_result->result.cost;
      q.ratio = q.flat_cost > 0 ? q.hier_cost / q.flat_cost : 1.0;
      if (q.ratio > 1.10) quality_pass = false;
      quality.push_back(q);
      std::printf("  %5d  %9.4f ms  %9.4f ms  %8.3f %s\n", n, q.flat_cost,
                  q.hier_cost, q.ratio, q.ratio <= 1.10 ? "" : "(> 1.10)");
    }
    std::printf("hier within 10%% of the flat incumbent: %s\n\n",
                quality_pass ? "PASS" : "FAIL");
  }

  // --- the scaling ladder -------------------------------------------------
  std::printf("scaling ladder (m = 2n instances, %d-per-rack):\n", rack);
  std::printf(
      "      n       m   clusters  shards  seams      cost      wall     "
      "us/node\n");
  std::vector<LadderPoint> ladder;
  for (int n : sizes) {
    const int m = 2 * n;
    graph::CommGraph app = MeshOf(n);
    hier::CallbackCostSource source(
        m, [&](int i, int j) { return SyntheticCost(seed, rack, i, j); });
    Stopwatch wall;
    auto solved = RunHier(app, source, threads, seed);
    CLOUDIA_CHECK(solved.ok());
    LadderPoint p;
    p.n = n;
    p.m = m;
    p.wall_s = wall.ElapsedSeconds();
    p.cost = solved->result.cost;
    p.stats = solved->stats;
    ladder.push_back(p);
    std::printf("  %6d  %6d  %8d  %6d  %5d  %7.4f ms  %7.2f s  %8.2f\n", n,
                m, p.stats.clusters, p.stats.shards, p.stats.seams_polished,
                p.cost, p.wall_s, 1e6 * p.wall_s / n);
  }
  double per_node_min = 1e300, per_node_max = 0.0;
  for (const LadderPoint& p : ladder) {
    const double per_node = p.wall_s / p.n;
    per_node_min = std::min(per_node_min, per_node);
    per_node_max = std::max(per_node_max, per_node);
  }
  const double spread =
      per_node_min > 0 ? per_node_max / per_node_min : 1e300;
  // A 4x per-node spread over a 50x size range is near-linear; flat CP's
  // quadratic-plus growth (Fig. 8) would spread ~50x.
  const bool scaling_pass = spread <= 4.0;
  std::printf(
      "per-node wall spread across the ladder: %.2fx (near-linear <= "
      "4x): %s\n\n",
      spread, scaling_pass ? "PASS" : "FAIL");

  // --- single-thread determinism ------------------------------------------
  bool deterministic = true;
  if (!skip_determinism) {
    const int n = sizes.front();
    graph::CommGraph app = MeshOf(n);
    hier::CallbackCostSource source(
        2 * n, [&](int i, int j) { return SyntheticCost(seed, rack, i, j); });
    auto first = RunHier(app, source, /*threads=*/1, seed);
    auto second = RunHier(app, source, /*threads=*/1, seed);
    CLOUDIA_CHECK(first.ok() && second.ok());
    deterministic = first->result.deployment == second->result.deployment &&
                    first->result.cost == second->result.cost;
    std::printf("--threads=1 repeat bit-identical at n=%d: %s\n\n", n,
                deterministic ? "PASS" : "FAIL");
  }

  const bool pass = quality_pass && scaling_pass && deterministic;
  if (!json_path.empty()) {
    WriteJson(json_path, quality, ladder, spread, deterministic, pass);
  }
  std::printf("overall: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
