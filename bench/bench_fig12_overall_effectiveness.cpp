// Fig. 12: overall effectiveness -- reduction in time-to-solution (behavioral
// simulation) or response time (aggregation query, KV store) of the ClouDiA
// deployment vs the default deployment, over 5 EC2 allocations.
#include <cstdio>

#include "common/table.h"
#include "pipeline.h"

int main() {
  using namespace cloudia;
  bench::PrintHeader(
      "Figure 12: time reduction over five allocations, three workloads",
      "15-55% reduction; aggregation query benefits most on average, the "
      "KV store least",
      "10% over-allocation; sim/KV: 100 nodes, aggregation: 57; CP(k=20) "
      "for longest link, MIP for longest path");

  TextTable t({"allocation", "workload", "default[ms]", "ClouDiA[ms]",
               "reduction[%]"});
  for (int alloc = 1; alloc <= 5; ++alloc) {
    for (bench::Workload w :
         {bench::Workload::kBehavioral, bench::Workload::kAggregation,
          bench::Workload::kKvStore}) {
      graph::CommGraph g = bench::WorkloadGraph(w);
      int total = g.num_nodes() + g.num_nodes() / 10;
      bench::CloudFixture fx(net::AmazonEc2Profile(),
                             /*seed=*/1200 + static_cast<uint64_t>(alloc),
                             total);
      bench::PipelineOutcome out =
          bench::RunPipeline(fx.cloud, fx.instances, w,
                             measure::CostMetric::kMean,
                             static_cast<uint64_t>(alloc));
      t.AddRow({StrFormat("%d", alloc), bench::WorkloadName(w),
                StrFormat("%.1f", out.default_ms),
                StrFormat("%.1f", out.optimized_ms),
                StrFormat("%.1f", out.ReductionPercent())});
      std::printf("allocation %d  %-22s reduction %5.1f %%\n", alloc,
                  bench::WorkloadName(w), out.ReductionPercent());
    }
  }
  std::printf("\n%s", t.ToString().c_str());
  return 0;
}
