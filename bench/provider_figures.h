// Shared implementation for the Appendix-3 provider figures (18-21): latency
// heterogeneity CDF and mean-latency stability for GCE and Rackspace.
#ifndef CLOUDIA_BENCH_PROVIDER_FIGURES_H_
#define CLOUDIA_BENCH_PROVIDER_FIGURES_H_

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"

namespace cloudia::bench {

/// CDF of mean pairwise latency over `n` instances (Figs. 18 / 20).
inline void RunProviderCdfFigure(const std::string& figure,
                                 const std::string& claim,
                                 net::ProviderProfile profile, int n,
                                 uint64_t seed) {
  PrintHeader(figure, claim,
              StrFormat("%d instances on the %s profile", n,
                        profile.name.c_str()));
  CloudFixture fx(std::move(profile), seed, n);
  std::vector<double> latencies;
  for (size_t i = 0; i < fx.instances.size(); ++i) {
    for (size_t j = 0; j < fx.instances.size(); ++j) {
      if (i != j) {
        latencies.push_back(
            fx.cloud.ExpectedRtt(fx.instances[i], fx.instances[j]));
      }
    }
  }
  PrintCdf("mean latency [ms]", latencies, 25);
  PrintQuantiles("\nsummary [ms]", latencies);
}

/// Mean latency of 4 links over `hours` hours, hourly buckets (Figs. 19/21).
inline void RunProviderStabilityFigure(const std::string& figure,
                                       const std::string& claim,
                                       net::ProviderProfile profile,
                                       uint64_t seed, int hours = 60) {
  PrintHeader(figure, claim,
              StrFormat("4 links on the %s profile, hourly averages over %dh",
                        profile.name.c_str(), hours));
  CloudFixture fx(std::move(profile), seed, 50);
  const std::pair<int, int> links[4] = {{0, 1}, {5, 27}, {12, 40}, {20, 49}};
  Rng rng(seed + 1);
  TextTable t({"time[h]", "link1[ms]", "link2[ms]", "link3[ms]", "link4[ms]"});
  for (int hour = 0; hour <= hours; ++hour) {
    std::vector<std::string> row = {StrFormat("%d", hour)};
    for (const auto& [a, b] : links) {
      double sum = 0;
      for (int s = 0; s < 120; ++s) {
        double t = hour + 1.0 * s / 120.0;  // spread across the bucket
        sum += fx.cloud.SampleRtt(fx.instances[static_cast<size_t>(a)],
                                  fx.instances[static_cast<size_t>(b)],
                                  net::kDefaultProbeBytes, t, rng);
      }
      row.push_back(StrFormat("%.4f", sum / 120));
    }
    t.AddRow(row);
  }
  std::printf("%s", t.ToString().c_str());
}

}  // namespace cloudia::bench

#endif  // CLOUDIA_BENCH_PROVIDER_FIGURES_H_
