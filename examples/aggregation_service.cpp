// Service scenario (paper Sect. 6.1.2): a two-level top-k aggregation tree
// (1 root + 7 aggregators + 42 leaves = 50 nodes). The longest-path
// objective models the critical path of service calls; the deployment is
// searched with the LPNDP MIP encoding.
//
//   $ ./build/examples/aggregation_service [seed]
#include <cstdio>
#include <cstdlib>

#include "cloudia/advisor.h"
#include "graph/templates.h"
#include "workloads/aggregation.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;
  cloudia::net::CloudSimulator cloud(cloudia::net::AmazonEc2Profile(), seed);
  cloudia::graph::CommGraph tree = cloudia::graph::AggregationTree(7, 3);
  std::printf("aggregation tree: %d nodes, %d edges\n", tree.num_nodes(),
              tree.num_edges());

  cloudia::AdvisorConfig config;
  config.objective = cloudia::deploy::Objective::kLongestPath;
  config.method = cloudia::deploy::Method::kMip;
  config.cost_clusters = 0;  // clustering does not help LPNDP (paper Fig. 9)
  config.search_budget_s = 10.0;
  config.measure_duration_s = 90.0;
  config.seed = seed;

  cloudia::Advisor advisor(&cloud, config);
  auto report = advisor.Run(tree);
  if (!report.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  cloudia::wl::AggregationConfig q;
  q.queries = 2000;
  q.seed = seed + 100;
  auto tuned =
      cloudia::wl::RunAggregationQueries(cloud, tree, report->placement, q);
  auto fallback = cloudia::wl::RunAggregationQueries(
      cloud, tree, report->default_placement, q);
  if (!tuned.ok() || !fallback.ok()) {
    std::fprintf(stderr, "query simulation failed\n");
    return 1;
  }
  double reduction =
      100.0 * (fallback->primary_ms - tuned->primary_ms) / fallback->primary_ms;
  std::printf("top-k query response time over %d queries:\n", q.queries);
  std::printf("  default deployment : mean %6.3f ms   p99 %6.3f ms\n",
              fallback->primary_ms, fallback->p99_ms);
  std::printf("  ClouDiA deployment : mean %6.3f ms   p99 %6.3f ms\n",
              tuned->primary_ms, tuned->p99_ms);
  std::printf("  reduction          : %5.1f %%\n", reduction);
  return 0;
}
