// HPC scenario (paper Sect. 6.1.1): a fish-school behavioral simulation
// partitioned over a 10x10 mesh. Compares time-to-solution of the default
// deployment against the ClouDiA-optimized one on the same allocation.
//
//   $ ./build/examples/behavioral_simulation [seed]
#include <cstdio>
#include <cstdlib>

#include "cloudia/advisor.h"
#include "graph/templates.h"
#include "workloads/behavioral.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  cloudia::net::CloudSimulator cloud(cloudia::net::AmazonEc2Profile(), seed);
  cloudia::graph::CommGraph mesh = cloudia::graph::Mesh2D(10, 10);

  cloudia::AdvisorConfig config;
  config.objective = cloudia::deploy::Objective::kLongestLink;
  config.method = cloudia::deploy::Method::kCp;
  config.cost_clusters = 20;
  config.search_budget_s = 10.0;
  config.measure_duration_s = 120.0;
  config.seed = seed;

  cloudia::Advisor advisor(&cloud, config);
  auto report = advisor.Run(mesh);
  if (!report.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  cloudia::wl::BehavioralConfig sim;
  sim.ticks = 2000;  // the paper runs 100K ticks; per-tick time is what counts
  sim.seed = seed + 100;
  auto tuned =
      cloudia::wl::RunBehavioralSimulation(cloud, mesh, report->placement, sim);
  auto fallback = cloudia::wl::RunBehavioralSimulation(
      cloud, mesh, report->default_placement, sim);
  if (!tuned.ok() || !fallback.ok()) {
    std::fprintf(stderr, "simulation failed\n");
    return 1;
  }
  double reduction =
      100.0 * (fallback->primary_ms - tuned->primary_ms) / fallback->primary_ms;
  std::printf("time-to-solution, %d ticks:\n", sim.ticks);
  std::printf("  default deployment : %8.1f ms (%.3f ms/tick)\n",
              fallback->primary_ms, fallback->primary_ms / sim.ticks);
  std::printf("  ClouDiA deployment : %8.1f ms (%.3f ms/tick)\n",
              tuned->primary_ms, tuned->primary_ms / sim.ticks);
  std::printf("  reduction          : %5.1f %%  (paper Fig. 12: 15-55%%)\n",
              reduction);
  return 0;
}
