// Key-value store scenario (paper Sect. 6.1.3): 10 front-end servers fan
// queries out to 90 storage nodes. Neither longest link nor longest path
// matches mean response time exactly; the paper (and this example) still
// uses longest link and gets a solid improvement by avoiding bad links.
//
//   $ ./build/examples/kv_store [seed]
#include <cstdio>
#include <cstdlib>

#include "cloudia/advisor.h"
#include "graph/templates.h"
#include "workloads/kvstore.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  cloudia::net::CloudSimulator cloud(cloudia::net::AmazonEc2Profile(), seed);
  cloudia::graph::CommGraph store = cloudia::graph::Bipartite(10, 90);

  cloudia::AdvisorConfig config;
  config.objective = cloudia::deploy::Objective::kLongestLink;
  config.method = cloudia::deploy::Method::kCp;
  config.cost_clusters = 20;
  config.search_budget_s = 10.0;
  config.measure_duration_s = 120.0;
  config.seed = seed;

  cloudia::Advisor advisor(&cloud, config);
  auto report = advisor.Run(store);
  if (!report.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  cloudia::wl::KvStoreConfig q;
  q.queries = 4000;
  q.touched_per_query = 16;
  q.seed = seed + 100;
  auto tuned = cloudia::wl::RunKvStoreQueries(cloud, store, report->placement, q);
  auto fallback =
      cloudia::wl::RunKvStoreQueries(cloud, store, report->default_placement, q);
  if (!tuned.ok() || !fallback.ok()) {
    std::fprintf(stderr, "query simulation failed\n");
    return 1;
  }
  double reduction =
      100.0 * (fallback->primary_ms - tuned->primary_ms) / fallback->primary_ms;
  std::printf("multi-get response time over %d queries (fan-out %d):\n",
              q.queries, q.touched_per_query);
  std::printf("  default deployment : mean %6.3f ms   p99 %6.3f ms\n",
              fallback->primary_ms, fallback->p99_ms);
  std::printf("  ClouDiA deployment : mean %6.3f ms   p99 %6.3f ms\n",
              tuned->primary_ms, tuned->p99_ms);
  std::printf("  reduction          : %5.1f %%  (paper: 15-31%% for KV store)\n",
              reduction);
  return 0;
}
