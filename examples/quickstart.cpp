// Quickstart: tune the deployment of a 30-node mesh application on a
// simulated EC2 region with the staged DeploymentSession API -- measure the
// pairwise latencies once, then solve the same cached cost matrix with
// three registered methods and keep the best plan.
//
//   $ ./build/examples/quickstart [seed]
//
// The one-shot equivalent, when a single method is enough:
//   cloudia::Advisor advisor(&cloud, config);
//   auto report = advisor.Run(app);
#include <cstdio>
#include <cstdlib>

#include "cloudia/session.h"
#include "graph/templates.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A cloud region that behaves like EC2 US East (latency heterogeneity,
  // non-contiguous allocation, jitter).
  cloudia::net::CloudSimulator cloud(cloudia::net::AmazonEc2Profile(), seed);

  // The application: a 5x6 mesh of communicating components, the pattern of
  // a BSP-style behavioral simulation.
  cloudia::graph::CommGraph app = cloudia::graph::Mesh2D(5, 6);

  cloudia::SessionOptions options;
  options.over_allocation = 0.10;   // allocate 10% extra, keep the best 30
  options.measure_duration_s = 60;  // virtual measurement time
  options.seed = seed;

  cloudia::DeploymentSession session(&cloud, &app, options);

  // Stage 1+2: allocate the instances and measure their pairwise latencies.
  // This is the expensive step of a real run -- every solve below reuses the
  // one cached cost matrix, with zero re-measurement.
  cloudia::Status measured = session.Measure();
  if (!measured.ok()) {
    std::fprintf(stderr, "measurement failed: %s\n",
                 measured.ToString().c_str());
    return 1;
  }
  std::printf("measured %zu instances for %.0f virtual seconds\n\n",
              session.allocated().size(), session.measure_virtual_s());

  // Stage 3: compare three registered solvers on identical measured costs.
  std::printf("%-12s %14s %14s %10s\n", "method", "cost (ms)", "default (ms)",
              "reduction");
  for (const char* method : {"g2", "cp", "local"}) {
    cloudia::SolveSpec spec;
    spec.method = method;
    spec.time_budget_s = 5.0;
    spec.seed = seed;
    auto solve = session.Solve(spec);
    if (!solve.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method,
                   solve.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %14.4f %14.4f %9.1f%%\n", method, solve->cost_ms,
                solve->default_cost_ms, 100.0 * solve->predicted_improvement);
  }

  // Stage 4: terminate the extras, keeping the best plan's instances.
  auto terminated = session.Terminate();
  if (!terminated.ok()) {
    std::fprintf(stderr, "terminate failed: %s\n",
                 terminated.status().ToString().c_str());
    return 1;
  }
  const cloudia::SessionSolve* best = session.best_solve();
  std::printf("\nbest method: %s (terminated %zu extra instances)\n",
              best->method.c_str(), terminated->size());
  std::printf("node -> instance (first 10 shown)\n");
  for (int i = 0; i < 10; ++i) {
    const auto& inst = best->placement[static_cast<size_t>(i)];
    std::printf("  node %2d -> instance %3d (%s)\n", i, inst.id,
                cloudia::net::IpToString(inst.internal_ip).c_str());
  }
  return 0;
}
