// Quickstart: tune the deployment of a 30-node mesh application on a
// simulated EC2 region and print the advisor's report.
//
//   $ ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "cloudia/advisor.h"
#include "graph/templates.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A cloud region that behaves like EC2 US East (latency heterogeneity,
  // non-contiguous allocation, jitter).
  cloudia::net::CloudSimulator cloud(cloudia::net::AmazonEc2Profile(), seed);

  // The application: a 5x6 mesh of communicating components, the pattern of
  // a BSP-style behavioral simulation.
  cloudia::graph::CommGraph app = cloudia::graph::Mesh2D(5, 6);

  cloudia::AdvisorConfig config;
  config.over_allocation = 0.10;   // allocate 10% extra, keep the best 30
  config.search_budget_s = 5.0;
  config.measure_duration_s = 60;  // virtual measurement time
  config.seed = seed;

  cloudia::Advisor advisor(&cloud, config);
  auto report = advisor.Run(app);
  if (!report.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", report->ToString().c_str());
  std::printf("node -> instance (first 10 shown)\n");
  for (int i = 0; i < 10; ++i) {
    const auto& inst = report->placement[static_cast<size_t>(i)];
    std::printf("  node %2d -> instance %3d (%s)\n", i, inst.id,
                cloudia::net::IpToString(inst.internal_ip).c_str());
  }
  return 0;
}
